// Unit and property tests for the autodiff tensor engine: construction,
// forward values of every op, and finite-difference gradient checks.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace dcmt {
namespace {

using ops::Abs;
using ops::Add;
using ops::AddScalar;
using ops::BceLoss;
using ops::ConcatCols;
using ops::Div;
using ops::EmbeddingLookup;
using ops::Exp;
using ops::Log;
using ops::MatMul;
using ops::Mean;
using ops::Mul;
using ops::Neg;
using ops::OneMinus;
using ops::Relu;
using ops::Scale;
using ops::Sigmoid;
using ops::SliceCols;
using ops::Softplus;
using ops::SoftmaxRows;
using ops::Square;
using ops::SquaredNorm;
using ops::Sub;
using ops::Sum;
using ops::SumRows;
using ops::Tanh;
using ops::WeightedSum;

// --- Construction ------------------------------------------------------------

TEST(TensorTest, ZerosHasShapeAndZeroData) {
  Tensor t = Tensor::Zeros(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full(2, 2, 3.5f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 3.5f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(-1.25f).item(), -1.25f);
}

TEST(TensorTest, FromDataRoundTrips) {
  const std::vector<float> v = {1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::FromData(2, 3, v);
  EXPECT_EQ(t.ToVector(), v);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.0f);
}

TEST(TensorTest, ColumnVectorShape) {
  Tensor t = Tensor::ColumnVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 1);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  Tensor ta = Tensor::Randn(4, 4, 1.0f, &a);
  Tensor tb = Tensor::Randn(4, 4, 1.0f, &b);
  Tensor tc = Tensor::Randn(4, 4, 1.0f, &c);
  EXPECT_EQ(ta.ToVector(), tb.ToVector());
  EXPECT_NE(ta.ToVector(), tc.ToVector());
}

TEST(TensorTest, DetachSharesValuesNotGraph) {
  Tensor a = Tensor::Full(2, 2, 2.0f, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.ToVector(), a.ToVector());
}

TEST(TensorTest, NullTensorUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.rows(), 0);
}

// --- Forward values -----------------------------------------------------------

TEST(OpsForward, MatMulSmall) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsForward, AddRowBroadcast) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor bias = Tensor::FromData(1, 2, {10, 20});
  Tensor c = Add(a, bias);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
}

TEST(OpsForward, MulColBroadcast) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::FromData(2, 1, {2, 10});
  Tensor c = Mul(a, col);
  EXPECT_FLOAT_EQ(c.at(0, 2), 6.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 40.0f);
}

TEST(OpsForward, ScalarBroadcast) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor s = Tensor::Scalar(3.0f);
  Tensor c = Mul(a, s);
  EXPECT_FLOAT_EQ(c.at(1, 1), 12.0f);
}

TEST(OpsForward, SigmoidValues) {
  Tensor a = Tensor::FromData(1, 3, {0.0f, 100.0f, -100.0f});
  Tensor s = Sigmoid(a);
  EXPECT_FLOAT_EQ(s.at(0, 0), 0.5f);
  EXPECT_NEAR(s.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(s.at(0, 2), 0.0f, 1e-6f);
}

TEST(OpsForward, ReluClampsNegatives) {
  Tensor a = Tensor::FromData(1, 4, {-2, -0.5f, 0.5f, 2});
  Tensor r = Relu(a);
  EXPECT_FLOAT_EQ(r.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.at(0, 3), 2.0f);
}

TEST(OpsForward, OneMinus) {
  Tensor a = Tensor::FromData(1, 2, {0.3f, 0.9f});
  Tensor o = OneMinus(a);
  EXPECT_FLOAT_EQ(o.at(0, 0), 0.7f);
  EXPECT_NEAR(o.at(0, 1), 0.1f, 1e-6f);
}

TEST(OpsForward, SoftplusStableInTails) {
  Tensor a = Tensor::FromData(1, 3, {-200.0f, 0.0f, 200.0f});
  Tensor s = Softplus(a);
  EXPECT_NEAR(s.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.at(0, 1), std::log(2.0f), 1e-5f);
  EXPECT_NEAR(s.at(0, 2), 200.0f, 1e-3f);
}

TEST(OpsForward, ConcatAndSliceInverse) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromData(2, 1, {5, 6});
  Tensor c = ConcatCols({a, b});
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
  Tensor back = SliceCols(c, 0, 2);
  EXPECT_EQ(back.ToVector(), a.ToVector());
}

TEST(OpsForward, EmbeddingLookupGathersRows) {
  Tensor table = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor out = EmbeddingLookup(table, {2, 0, 2});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
}

TEST(OpsForward, SumMeanSumRows) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
  Tensor rows = SumRows(a);
  EXPECT_FLOAT_EQ(rows.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(rows.at(1, 0), 7.0f);
}

TEST(OpsForward, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, -1, 0, 1});
  Tensor s = SoftmaxRows(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += s.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_GT(s.at(0, 2), s.at(0, 0));
}

TEST(OpsForward, SoftmaxRowsStableForLargeLogits) {
  Tensor a = Tensor::FromData(1, 2, {1000.0f, 999.0f});
  Tensor s = SoftmaxRows(a);
  EXPECT_TRUE(std::isfinite(s.at(0, 0)));
  EXPECT_NEAR(s.at(0, 0) + s.at(0, 1), 1.0f, 1e-6f);
}

TEST(OpsForward, BceLossMatchesFormula) {
  Tensor p = Tensor::FromData(2, 1, {0.8f, 0.2f});
  Tensor y = Tensor::FromData(2, 1, {1.0f, 0.0f});
  Tensor e = BceLoss(p, y);
  EXPECT_NEAR(e.at(0, 0), -std::log(0.8f), 1e-6f);
  EXPECT_NEAR(e.at(1, 0), -std::log(0.8f), 1e-6f);
}

TEST(OpsForward, BceLossClampsExtremePredictions) {
  Tensor p = Tensor::FromData(2, 1, {0.0f, 1.0f});
  Tensor y = Tensor::FromData(2, 1, {1.0f, 0.0f});
  Tensor e = BceLoss(p, y);
  EXPECT_TRUE(std::isfinite(e.at(0, 0)));
  EXPECT_TRUE(std::isfinite(e.at(1, 0)));
}

TEST(OpsForward, WeightedSum) {
  Tensor a = Tensor::FromData(3, 1, {1, 2, 3});
  Tensor w = Tensor::FromData(3, 1, {0.5f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(WeightedSum(a, w).item(), 6.5f);
}

// --- Backward: hand-computed cases --------------------------------------------

TEST(OpsBackward, SumGradIsOnes) {
  Tensor a = Tensor::Full(2, 3, 1.0f, /*requires_grad=*/true);
  Sum(a).Backward();
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(a.grad()[i], 1.0f);
}

TEST(OpsBackward, GradAccumulatesAcrossUses) {
  // loss = sum(a) + sum(a) => da = 2.
  Tensor a = Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  Tensor loss = Add(Sum(a), Sum(a));
  loss.Backward();
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a.grad()[i], 2.0f);
}

TEST(OpsBackward, DetachBlocksGradient) {
  Tensor a = Tensor::Full(2, 2, 2.0f, /*requires_grad=*/true);
  Tensor loss = Sum(Mul(a, a.Detach()));  // d/da = a_detached only
  loss.Backward();
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a.grad()[i], 2.0f);
}

TEST(OpsBackward, EmbeddingScatterAdds) {
  Tensor table = Tensor::Zeros(4, 2, /*requires_grad=*/true);
  Tensor out = EmbeddingLookup(table, {1, 1, 3});
  Sum(out).Backward();
  // Row 1 used twice, row 3 once, rows 0/2 untouched.
  EXPECT_FLOAT_EQ(table.grad()[1 * 2 + 0], 2.0f);
  EXPECT_FLOAT_EQ(table.grad()[3 * 2 + 1], 1.0f);
  EXPECT_FLOAT_EQ(table.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(table.grad()[2 * 2], 0.0f);
}

TEST(OpsBackward, ZeroGradResets) {
  Tensor a = Tensor::Full(1, 1, 1.0f, /*requires_grad=*/true);
  Sum(a).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

// --- Gradient checks (finite differences) -------------------------------------

Tensor MakeInput(int rows, int cols, std::uint64_t seed, float lo = -1.0f,
                 float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::Uniform(rows, cols, lo, hi, &rng, /*requires_grad=*/true);
}

TEST(GradCheck, MatMul) {
  Tensor a = MakeInput(3, 4, 1);
  Tensor b = MakeInput(4, 2, 2);
  auto loss = [&]() { return Sum(MatMul(a, b)); };
  const GradCheckResult r = CheckGradients(loss, {a, b});
  EXPECT_TRUE(r.ok) << r.worst;
}

TEST(GradCheck, MatMulChain) {
  Tensor a = MakeInput(2, 3, 3);
  Tensor b = MakeInput(3, 3, 4);
  Tensor c = MakeInput(3, 2, 5);
  auto loss = [&]() { return Sum(MatMul(MatMul(a, b), c)); };
  const GradCheckResult r = CheckGradients(loss, {a, b, c});
  EXPECT_TRUE(r.ok) << r.worst;
}

struct BroadcastCase {
  int rows;
  int cols;
  const char* label;
};

class BroadcastGradTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastGradTest, AddSubMulDiv) {
  const BroadcastCase param = GetParam();
  Tensor a = MakeInput(3, 4, 11);
  Tensor b = MakeInput(param.rows, param.cols, 12, 0.5f, 1.5f);  // away from 0
  {
    auto loss = [&]() { return Sum(Add(a, b)); };
    EXPECT_TRUE(CheckGradients(loss, {a, b}).ok) << "Add " << param.label;
  }
  {
    auto loss = [&]() { return Sum(Sub(a, b)); };
    EXPECT_TRUE(CheckGradients(loss, {a, b}).ok) << "Sub " << param.label;
  }
  {
    auto loss = [&]() { return Sum(Square(Mul(a, b))); };
    EXPECT_TRUE(CheckGradients(loss, {a, b}).ok) << "Mul " << param.label;
  }
  {
    auto loss = [&]() { return Sum(Div(a, b)); };
    EXPECT_TRUE(CheckGradients(loss, {a, b}).ok) << "Div " << param.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBroadcastKinds, BroadcastGradTest,
    ::testing::Values(BroadcastCase{3, 4, "same"}, BroadcastCase{1, 4, "row"},
                      BroadcastCase{3, 1, "col"}, BroadcastCase{1, 1, "scalar"}),
    [](const ::testing::TestParamInfo<BroadcastCase>& param_info) {
      return param_info.param.label;
    });

TEST(GradCheck, UnaryOps) {
  Tensor a = MakeInput(3, 3, 21, -2.0f, 2.0f);
  struct Case {
    const char* name;
    std::function<Tensor()> loss;
  };
  const std::vector<Case> cases = {
      {"sigmoid", [&] { return Sum(Sigmoid(a)); }},
      {"tanh", [&] { return Sum(Tanh(a)); }},
      {"exp", [&] { return Sum(Exp(a)); }},
      {"neg", [&] { return Sum(Neg(a)); }},
      {"one_minus", [&] { return Sum(OneMinus(a)); }},
      {"square", [&] { return Sum(Square(a)); }},
      {"scale", [&] { return Sum(Scale(a, -2.5f)); }},
      {"add_scalar", [&] { return Sum(AddScalar(a, 1.5f)); }},
      {"softplus", [&] { return Sum(Softplus(a)); }},
      {"squared_norm", [&] { return SquaredNorm(a); }},
  };
  for (const Case& c : cases) {
    const GradCheckResult r = CheckGradients(c.loss, {a});
    EXPECT_TRUE(r.ok) << c.name << ": " << r.worst;
  }
}

TEST(GradCheck, LogAwayFromZero) {
  Tensor a = MakeInput(2, 3, 22, 0.5f, 2.0f);
  auto loss = [&]() { return Sum(Log(a)); };
  EXPECT_TRUE(CheckGradients(loss, {a}).ok);
}

TEST(GradCheck, AbsAwayFromKink) {
  Tensor a = MakeInput(2, 3, 23, 0.5f, 2.0f);
  Tensor b = MakeInput(2, 3, 24, -2.0f, -0.5f);
  auto loss = [&]() { return Add(Sum(Abs(a)), Sum(Abs(b))); };
  EXPECT_TRUE(CheckGradients(loss, {a, b}).ok);
}

TEST(GradCheck, ReluAwayFromKink) {
  // Keep entries away from 0 so finite differences are valid.
  Tensor a = MakeInput(2, 3, 25, 0.3f, 2.0f);
  Tensor b = MakeInput(2, 3, 26, -2.0f, -0.3f);
  auto loss = [&]() { return Add(Sum(Relu(a)), Sum(Relu(b))); };
  EXPECT_TRUE(CheckGradients(loss, {a, b}).ok);
}

TEST(GradCheck, ConcatAndSlice) {
  Tensor a = MakeInput(2, 2, 31);
  Tensor b = MakeInput(2, 3, 32);
  auto loss = [&]() {
    Tensor c = ConcatCols({a, b});
    return Sum(Square(SliceCols(c, 1, 3)));
  };
  EXPECT_TRUE(CheckGradients(loss, {a, b}).ok);
}

TEST(GradCheck, EmbeddingLookup) {
  Tensor table = MakeInput(5, 3, 33);
  const std::vector<int> ids = {0, 2, 2, 4, 1};
  auto loss = [&]() { return Sum(Square(EmbeddingLookup(table, ids))); };
  EXPECT_TRUE(CheckGradients(loss, {table}).ok);
}

TEST(GradCheck, SumRowsAndMean) {
  Tensor a = MakeInput(3, 4, 34);
  auto loss = [&]() { return Mean(Square(SumRows(a))); };
  EXPECT_TRUE(CheckGradients(loss, {a}).ok);
}

TEST(GradCheck, SoftmaxRows) {
  Tensor a = MakeInput(3, 4, 35);
  Tensor pick = Tensor::FromData(3, 4, {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1});
  auto loss = [&]() { return Sum(Mul(SoftmaxRows(a), pick)); };
  EXPECT_TRUE(CheckGradients(loss, {a}).ok);
}

TEST(GradCheck, BceThroughSigmoid) {
  Tensor logits = MakeInput(4, 1, 36, -2.0f, 2.0f);
  Tensor labels = Tensor::FromData(4, 1, {1, 0, 1, 0});
  auto loss = [&]() { return Mean(BceLoss(Sigmoid(logits), labels)); };
  EXPECT_TRUE(CheckGradients(loss, {logits}).ok);
}

TEST(GradCheck, DcmtStyleCompositeLoss) {
  // A miniature of Eq. (9): weighted factual + counterfactual BCE + |1-(r+r*)|.
  Tensor lf = MakeInput(4, 1, 37, -1.5f, 1.5f);
  Tensor lcf = MakeInput(4, 1, 38, -1.5f, 1.5f);
  Tensor y = Tensor::FromData(4, 1, {1, 0, 0, 1});
  Tensor w_f = Tensor::FromData(4, 1, {0.5f, 0.0f, 0.25f, 0.25f});
  Tensor w_cf = Tensor::FromData(4, 1, {0.0f, 1.0f, 0.0f, 0.0f});
  auto loss = [&]() {
    Tensor r = Sigmoid(lf);
    Tensor r_cf = Sigmoid(lcf);
    Tensor factual = WeightedSum(BceLoss(r, y), w_f);
    Tensor counter = WeightedSum(BceLoss(r_cf, OneMinus(y)), w_cf);
    Tensor reg = Mean(Abs(OneMinus(Add(r, r_cf))));
    return Add(Add(factual, counter), Scale(reg, 0.1f));
  };
  EXPECT_TRUE(CheckGradients(loss, {lf, lcf}).ok);
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.Uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(2);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(RngTest, BoundedIsUnbiasedEnough) {
  Rng rng(3);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextBounded(5)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.Bernoulli(0.0f));
  EXPECT_TRUE(rng.Bernoulli(1.0f));
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng parent(5);
  Rng a = parent.Split(1);
  Rng b = parent.Split(2);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace dcmt

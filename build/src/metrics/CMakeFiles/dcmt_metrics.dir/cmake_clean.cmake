file(REMOVE_RECURSE
  "CMakeFiles/dcmt_metrics.dir/metrics.cc.o"
  "CMakeFiles/dcmt_metrics.dir/metrics.cc.o.d"
  "libdcmt_metrics.a"
  "libdcmt_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcmt_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "nn/graph_check.h"

#include <cstddef>
#include <cstring>
#include <sstream>
#include <unordered_set>

namespace dcmt {
namespace nn {
namespace {

using Impl = Tensor::Impl;

std::string ShapeOf(const Impl* n) {
  std::ostringstream os;
  os << "[" << n->rows << " x " << n->cols << "]";
  return os.str();
}

/// "op 'matmul' node [3 x 4]" or "node 'esmm.ctr.w0' [64 x 32]".
std::string Describe(const Impl* n) {
  std::ostringstream os;
  if (n->op != nullptr) os << "op '" << n->op << "' ";
  os << "node";
  if (!n->name.empty()) os << " '" << n->name << "'";
  os << " " << ShapeOf(n);
  return os.str();
}

bool OpIs(const Impl* n, const char* tag) {
  return n->op != nullptr && std::strcmp(n->op, tag) == 0;
}

bool IsElementwiseBinary(const Impl* n) {
  static const char* kTags[] = {"add", "sub", "mul", "div", "bce_loss",
                                "sigmoid_bce"};
  for (const char* t : kTags) {
    if (OpIs(n, t)) return true;
  }
  return false;
}

/// Fused [1 x 1] reductions (mean, Σ a·w, Σ a²). `sum` keeps its own branch
/// below for historical reasons; these share its only rule.
bool IsScalarReduction(const Impl* n) {
  static const char* kTags[] = {"mean", "weighted_sum", "squared_norm"};
  for (const char* t : kTags) {
    if (OpIs(n, t)) return true;
  }
  return false;
}

bool IsElementwiseUnary(const Impl* n) {
  static const char* kTags[] = {"scale",   "add_scalar", "neg",  "one_minus",
                                "sigmoid", "relu",       "tanh", "exp",
                                "log",     "abs",        "softplus", "square",
                                "softmax_rows"};
  for (const char* t : kTags) {
    if (OpIs(n, t)) return true;
  }
  return false;
}

/// Second operand of a binary elementwise op must be same-shape, a row
/// vector, a column vector, or a scalar relative to the first.
bool Broadcastable(const Impl* a, const Impl* b) {
  if (b->rows == a->rows && b->cols == a->cols) return true;
  if (b->rows == 1 && b->cols == 1) return true;
  if (b->rows == 1 && b->cols == a->cols) return true;
  if (b->rows == a->rows && b->cols == 1) return true;
  return false;
}

class Checker {
 public:
  explicit Checker(GraphCheckResult* result) : result_(result) {}

  void Add(const char* kind, const std::string& message) {
    result_->issues.push_back({kind, message});
  }

  /// Validates one node's storage invariants and per-op shape rules.
  void CheckNode(const Impl* n) {
    if (n->rows <= 0 || n->cols <= 0 ||
        n->data.size() !=
            static_cast<std::size_t>(n->rows) * static_cast<std::size_t>(n->cols)) {
      Add("shape-invalid", Describe(n) + " declares shape " + ShapeOf(n) +
                               " but holds " + std::to_string(n->data.size()) +
                               " elements");
      return;  // Downstream shape rules would only repeat the confusion.
    }
    if (!n->grad.empty() && n->grad.size() != n->data.size()) {
      Add("shape-invalid", Describe(n) + " has a gradient buffer of " +
                               std::to_string(n->grad.size()) +
                               " elements for " + std::to_string(n->data.size()) +
                               " data elements");
    }
    for (const Tensor& p : n->parents) {
      if (!p.defined()) {
        Add("null-parent", Describe(n) + " records a null parent handle");
        return;
      }
    }
    CheckOpShapes(n);
    if (n->backward_ran) {
      Add("stale-tape",
          Describe(n) +
              " was already consumed by a previous Backward() — rebuild the "
              "forward graph instead of reusing the tape");
    }
    if (!n->parents.empty() && n->requires_grad && !n->backward_fn) {
      bool parent_needs_grad = false;
      for (const Tensor& p : n->parents) {
        parent_needs_grad = parent_needs_grad || p.requires_grad();
      }
      if (parent_needs_grad) {
        Add("missing-backward",
            Describe(n) +
                " requires grad and has grad-requiring parents but no "
                "backward closure is registered");
      }
    }
  }

  void CheckOpShapes(const Impl* n) {
    const std::vector<Tensor>& ps = n->parents;
    if (OpIs(n, "matmul")) {
      if (ps.size() != 2) {
        Add("shape-mismatch", Describe(n) + " expects 2 parents, has " +
                                  std::to_string(ps.size()));
        return;
      }
      const Impl* a = ps[0].impl();
      const Impl* b = ps[1].impl();
      if (a->cols != b->rows) {
        Add("shape-mismatch", Describe(n) + ": inner dimensions " + ShapeOf(a) +
                                  " * " + ShapeOf(b) + " do not agree");
      }
      if (n->rows != a->rows || n->cols != b->cols) {
        Add("shape-mismatch", Describe(n) + ": output should be [" +
                                  std::to_string(a->rows) + " x " +
                                  std::to_string(b->cols) + "]");
      }
    } else if (IsElementwiseBinary(n)) {
      if (ps.size() != 2) {
        Add("shape-mismatch", Describe(n) + " expects 2 parents, has " +
                                  std::to_string(ps.size()));
        return;
      }
      const Impl* a = ps[0].impl();
      const Impl* b = ps[1].impl();
      if (n->rows != a->rows || n->cols != a->cols) {
        Add("shape-mismatch",
            Describe(n) + ": output shape differs from first operand " +
                ShapeOf(a));
      }
      if (!Broadcastable(a, b)) {
        Add("shape-mismatch", Describe(n) + ": second operand " + ShapeOf(b) +
                                  " does not broadcast against " + ShapeOf(a));
      }
    } else if (IsElementwiseUnary(n)) {
      if (ps.size() != 1) {
        Add("shape-mismatch", Describe(n) + " expects 1 parent, has " +
                                  std::to_string(ps.size()));
        return;
      }
      const Impl* a = ps[0].impl();
      if (n->rows != a->rows || n->cols != a->cols) {
        Add("shape-mismatch", Describe(n) + ": output shape differs from input " +
                                  ShapeOf(a));
      }
    } else if (OpIs(n, "concat_cols")) {
      int total_cols = 0;
      for (const Tensor& p : ps) {
        if (p.rows() != n->rows) {
          Add("shape-mismatch", Describe(n) + ": part " + ShapeOf(p.impl()) +
                                    " has a different row count");
        }
        total_cols += p.cols();
      }
      if (total_cols != n->cols) {
        Add("shape-mismatch", Describe(n) + ": parts sum to " +
                                  std::to_string(total_cols) + " columns");
      }
    } else if (OpIs(n, "slice_cols")) {
      if (ps.size() == 1) {
        const Impl* a = ps[0].impl();
        if (n->rows != a->rows || n->cols > a->cols) {
          Add("shape-mismatch",
              Describe(n) + ": slice does not fit input " + ShapeOf(a));
        }
      }
    } else if (OpIs(n, "embedding_lookup")) {
      if (ps.size() == 1 && n->cols != ps[0].cols()) {
        Add("shape-mismatch", Describe(n) + ": output width differs from table " +
                                  ShapeOf(ps[0].impl()));
      }
    } else if (OpIs(n, "embedding_concat")) {
      // Fused gather+concat: one parent per field table; output width is the
      // sum of the table widths.
      int total_cols = 0;
      for (const Tensor& p : ps) total_cols += p.cols();
      if (total_cols != n->cols) {
        Add("shape-mismatch", Describe(n) + ": field tables sum to " +
                                  std::to_string(total_cols) + " columns");
      }
    } else if (OpIs(n, "sum") || IsScalarReduction(n)) {
      if (n->rows != 1 || n->cols != 1) {
        Add("shape-mismatch", Describe(n) + ": reduction output must be [1 x 1]");
      }
    } else if (OpIs(n, "sum_rows")) {
      if (ps.size() == 1 && (n->rows != ps[0].rows() || n->cols != 1)) {
        Add("shape-mismatch", Describe(n) + ": row reduction of " +
                                  ShapeOf(ps[0].impl()) + " must be [" +
                                  std::to_string(ps[0].rows()) + " x 1]");
      }
    }
  }

 private:
  GraphCheckResult* result_;
};

}  // namespace

std::string GraphCheckResult::Report() const {
  std::ostringstream os;
  for (const GraphIssue& issue : issues) {
    os << issue.kind << ": " << issue.message << "\n";
  }
  return os.str();
}

GraphCheckResult CheckGraph(const Tensor& loss,
                            const std::vector<Tensor>& params) {
  GraphCheckResult result;
  Checker checker(&result);

  if (!loss.defined()) {
    checker.Add("loss-no-grad", "loss tensor is null");
    return result;
  }
  if (loss.rows() != 1 || loss.cols() != 1) {
    checker.Add("loss-not-scalar",
                "loss must be [1 x 1], got " + ShapeOf(loss.impl()));
  }
  if (!loss.requires_grad()) {
    checker.Add("loss-no-grad",
                "loss does not require grad — Backward() would abort");
  }

  // Iterative DFS over the tape, mirroring Tensor::Backward()'s traversal.
  std::unordered_set<const Impl*> visited;
  std::vector<const Impl*> stack{loss.impl()};
  visited.insert(loss.impl());

  while (!stack.empty()) {
    const Impl* node = stack.back();
    stack.pop_back();
    ++result.nodes_visited;
    checker.CheckNode(node);
    for (const Tensor& parent : node->parents) {
      Impl* pi = parent.impl();
      if (pi == nullptr) continue;
      if (visited.insert(pi).second) stack.push_back(pi);
    }
  }

  for (const Tensor& p : params) {
    const Impl* pi = p.impl();
    const std::string label =
        pi != nullptr && !pi->name.empty() ? pi->name : "<unnamed>";
    if (pi == nullptr) {
      checker.Add("unreachable-param", "parameter '" + label + "' is null");
      continue;
    }
    if (!pi->requires_grad) {
      checker.Add("unreachable-param",
                  "parameter '" + label +
                      "' does not require grad — the optimizer will never "
                      "update it");
      continue;
    }
    if (visited.find(pi) == visited.end()) {
      checker.Add("unreachable-param",
                  "parameter '" + label + "' " + ShapeOf(pi) +
                      " is not reachable from the loss — it would stay at "
                      "its initialization forever");
    }
  }

  return result;
}

GraphCheckResult CheckGraph(const Tensor& loss) { return CheckGraph(loss, {}); }

}  // namespace nn
}  // namespace dcmt

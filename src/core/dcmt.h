#ifndef DCMT_CORE_DCMT_H_
#define DCMT_CORE_DCMT_H_

#include <memory>
#include <string>

#include "core/twin_tower.h"
#include "models/common.h"
#include "models/multi_task_model.h"

namespace dcmt {
namespace core {

/// DCMT: the paper's Direct entire-space Causal Multi-Task framework
/// (Fig. 3). A wide&deep CTR tower plus the counterfactual twin CVR tower,
/// trained with the entire-space counterfactual loss:
///
///   E^DCMT = Σ_O w_i·e(r, r̂)  +  Σ_N* w*_i·e(r*, r̂*)
///            + (λ1/|D|) Σ_D |1 − (r̂ + r̂*)|          (Eq. 9)
///
/// where w_i are (self-normalized, Eq. 13) inverse click propensities in the
/// click space O and w*_i inverse *non-click* propensities in the mirrored
/// counterfactual space N* (whose labels are r* = 1 − r). Total training
/// loss adds the CTR and CTCVR tasks (Eq. 14); the λ2‖θ‖² term is applied by
/// the optimizer as weight decay.
///
/// Variants reproduce the paper's ablation (Table III/IV):
///   kPd   — propensity-based debiasing over D only: Eq. (8), λ1 = 0.
///   kCf   — counterfactual mechanism only: uniform (non-IPW) factual and
///           counterfactual losses + the λ1 regularizer.
///   kFull — both (the completed DCMT).
class Dcmt : public models::MultiTaskModel {
 public:
  enum class Variant { kFull, kPd, kCf };

  Dcmt(const data::FeatureSchema& schema, const models::ModelConfig& config,
       Variant variant = Variant::kFull);

  models::Predictions Forward(const data::Batch& batch) override;
  Tensor Loss(const data::Batch& batch,
              const models::Predictions& preds) override;
  std::string name() const override;

  Variant variant() const { return variant_; }

  /// The CVR-task part of the loss alone (Eq. 9), exposed for tests of the
  /// unbiasedness theorem (Theorem III.1).
  Tensor CvrTaskLoss(const data::Batch& batch, const models::Predictions& preds);

 private:
  models::ModelConfig config_;
  Variant variant_;
  std::unique_ptr<models::SharedEmbeddings> embeddings_;
  // CTR task: wide&deep (deep tower + generalized linear wide part).
  std::unique_ptr<models::Tower> ctr_tower_;
  std::unique_ptr<nn::Linear> ctr_wide_;
  // CVR task: the twin tower.
  std::unique_ptr<TwinTower> twin_tower_;
};

}  // namespace core
}  // namespace dcmt

#endif  // DCMT_CORE_DCMT_H_

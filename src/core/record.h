#ifndef DCMT_CORE_RECORD_H_
#define DCMT_CORE_RECORD_H_

// The CRC-framed record container shared by every on-disk format in this
// repo (v2 model/training checkpoints in src/nn/serialize, shard files and
// shard manifests in src/data/shard). One file is:
//
//   file    := magic(8) version(u32) record* end-record
//   record  := type(u32) payload_size(u64) payload crc32(u32)
//
// The CRC of each record covers its type, size and payload, so truncation,
// bit flips and framing damage are all detected before any payload is
// interpreted. Files must end with a type-0 terminator record followed
// immediately by EOF; trailing garbage is rejected. Writers pair this with
// core::AtomicWriteFile (tmp + fsync + rename) so a crash mid-save leaves
// either the previous complete file or no file — never a torn one.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcmt {
namespace core {

/// Record type 0 terminates every record image, whatever the format.
inline constexpr std::uint32_t kEndRecordType = 0;

/// Builds a record payload from typed fields (little-endian PODs, u32-length
/// strings, u64-length vectors) into an in-memory buffer.
class PayloadWriter {
 public:
  void U8(std::uint8_t v);
  void U32(std::uint32_t v);
  void I32(std::int32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v);
  void F32(float v);
  void F64(double v);
  void Str(std::string_view s);                     // u32 length + bytes
  void F32Vec(const std::vector<float>& v);         // u64 count + data
  void F32Array(const float* data, std::size_t n);  // same layout as F32Vec
  void F64Vec(const std::vector<double>& v);        // u64 count + data
  void I64Vec(const std::vector<std::int64_t>& v);  // u64 count + data
  void I32Vec(const std::vector<std::int32_t>& v);  // u64 count + data
  void U8Vec(const std::vector<std::uint8_t>& v);   // u64 count + data

  const std::string& data() const { return buf_; }

 private:
  void Raw(const void* p, std::size_t n);
  std::string buf_;
};

/// Bounds-checked mirror of PayloadWriter. Every getter returns false (and
/// poisons the reader) on overrun; vector getters additionally reject counts
/// larger than the remaining payload, so corrupt lengths cannot trigger huge
/// allocations. Callers must end with AtEnd() to reject trailing bytes.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : rest_(payload) {}

  bool U8(std::uint8_t* v);
  bool U32(std::uint32_t* v);
  bool I32(std::int32_t* v);
  bool U64(std::uint64_t* v);
  bool I64(std::int64_t* v);
  bool F32(float* v);
  bool F64(double* v);
  bool Str(std::string* s, std::size_t max_len = 4096);
  bool F32Vec(std::vector<float>* v);
  bool F64Vec(std::vector<double>* v);
  bool I64Vec(std::vector<std::int64_t>* v);
  bool I32Vec(std::vector<std::int32_t>* v);
  bool U8Vec(std::vector<std::uint8_t>* v);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && rest_.empty(); }

 private:
  bool Raw(void* p, std::size_t n);
  template <typename T>
  bool Vec(std::vector<T>* v);

  std::string_view rest_;
  bool ok_ = true;
};

/// Appends one framed record (type, size, payload, CRC) to `*out`.
void AppendRecord(std::string* out, std::uint32_t type, std::string_view payload);

/// One parsed record; `payload` points into the parsed file buffer.
struct RecordView {
  std::uint32_t type = kEndRecordType;
  std::string_view payload;
};

/// Starts a record image: the 8-byte magic followed by the format version.
std::string BeginRecordImage(const char (&magic)[8], std::uint32_t version);

/// Validates an entire record image — magic, version, every record CRC, the
/// type-0 terminator, and the absence of trailing bytes — and returns views
/// of the records (terminator excluded). Returns false on any damage; no
/// partial results are produced.
bool ParseRecordImage(std::string_view file, const char (&magic)[8],
                      std::uint32_t expected_version,
                      std::vector<RecordView>* records);

}  // namespace core
}  // namespace dcmt

#endif  // DCMT_CORE_RECORD_H_

// dcmt_lint — project-specific C++ linter (see tools/lint/linter.h for the
// rule set). Runs as a ctest entry and as a run_tier1.sh stage:
//
//   dcmt_lint --root=/path/to/repo src tests tools
//
// Prints one "file:line: rule: message" diagnostic per finding and exits
// nonzero if anything (unwaived) was found.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/linter.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: dcmt_lint [--root=DIR] [paths...]\n"
                   "paths default to: src tests tools\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "tools"};

  const std::vector<dcmt::lint::Diagnostic> diags =
      dcmt::lint::LintTree(root, paths);
  for (const dcmt::lint::Diagnostic& d : diags) {
    std::fprintf(stderr, "%s\n", d.ToString().c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "dcmt_lint: %zu finding(s)\n", diags.size());
    return 1;
  }
  std::printf("dcmt_lint: clean\n");
  return 0;
}

#ifndef DCMT_NN_EMBEDDING_H_
#define DCMT_NN_EMBEDDING_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace dcmt {
namespace nn {

/// One embedding table per categorical field, concatenated per example:
/// the paper's shared Embedding Layer. Input is field-major: `field_ids[f][b]`
/// is the id of field f for example b; output is [batch x fields*dim].
///
/// Both CTR Task and CVR Task share one EmbeddingBag instance (the paper's
/// "shared features"), which is why it is a standalone module rather than
/// being folded into a tower.
class EmbeddingBag : public Module {
 public:
  /// `vocab_sizes[f]` is the number of distinct ids of field f; all fields
  /// share the embedding dimension `dim` (the paper uses one dim for every
  /// feature, swept in Fig. 8(a)).
  EmbeddingBag(std::string name, std::vector<int> vocab_sizes, int dim, Rng* rng);

  /// Looks up and concatenates all field embeddings.
  Tensor Forward(const std::vector<std::vector<int>>& field_ids) const;

  int field_count() const { return static_cast<int>(tables_.size()); }
  int dim() const { return dim_; }
  /// Output width = field_count() * dim().
  int out_features() const { return field_count() * dim_; }
  const Tensor& table(int field) const { return tables_[field]; }

 private:
  std::vector<Tensor> tables_;
  std::vector<int> vocab_sizes_;
  int dim_;
};

}  // namespace nn
}  // namespace dcmt

#endif  // DCMT_NN_EMBEDDING_H_

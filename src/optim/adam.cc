#include "optim/adam.h"

#include <cmath>

namespace dcmt {
namespace optim {

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Tensor& p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p.size()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p.size()), 0.0f);
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step = step_;
  state.lr = lr_;
  state.m = m_;
  state.v = v_;
  return state;
}

bool Adam::ImportState(const AdamState& state) {
  if (state.step < 0) return false;
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) return false;
  for (std::size_t k = 0; k < m_.size(); ++k) {
    if (state.m[k].size() != m_[k].size() || state.v[k].size() != v_[k].size()) {
      return false;
    }
  }
  step_ = state.step;
  lr_ = state.lr;
  m_ = state.m;
  v_ = state.v;
  return true;
}

void Adam::Step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad();
    float* m = m_[k].data();
    float* v = v_[k].data();
    for (std::int64_t i = 0; i < p.size(); ++i) {
      const float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace optim
}  // namespace dcmt

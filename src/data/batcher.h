#ifndef DCMT_DATA_BATCHER_H_
#define DCMT_DATA_BATCHER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace dcmt {
namespace data {

/// A minibatch in the layout models consume: field-major id lists plus
/// constant label tensors. Label tensors never require grad.
struct Batch {
  /// deep_ids[f][b]: id of deep field f for example b.
  std::vector<std::vector<int>> deep_ids;
  /// wide_ids[f][b]: id of wide field f for example b (empty if schema has none).
  std::vector<std::vector<int>> wide_ids;
  /// Click labels o as a [B x 1] tensor.
  Tensor click;
  /// Observed conversion labels r as a [B x 1] tensor (0 outside O).
  Tensor conversion;
  /// CTCVR labels t = o AND r. In a well-formed log t == r, but keep a
  /// separate tensor so malformed inputs cannot silently corrupt CTCVR.
  Tensor ctcvr;
  /// Raw click bytes for fast host-side masking (IPW weights, SNIPS sums).
  std::vector<std::uint8_t> click_raw;
  /// Raw conversion bytes.
  std::vector<std::uint8_t> conversion_raw;
  /// Generator ground-truth propensities (simulation oracle; models must
  /// never read these — only evaluation utilities like the oracle ranker do).
  std::vector<float> true_ctr;
  std::vector<float> true_cvr;
  int size = 0;
};

/// Row-incremental batch assembly. Both the in-RAM MakeBatch and the
/// streaming batcher build batches through this one class, so the two paths
/// are bit-identical by construction: the same Add() sequence produces the
/// same column buffers and the same ColumnVector tensors.
class BatchBuilder {
 public:
  BatchBuilder(const FeatureSchema& schema, int capacity);

  void Add(const Example& example);
  /// Finalizes the label tensors and returns the batch. The builder is
  /// consumed; construct a fresh one per batch.
  Batch Finish();

  int size() const { return size_; }

 private:
  const FeatureSchema& schema_;
  Batch batch_;
  std::vector<float> click_;
  std::vector<float> conversion_;
  std::vector<float> ctcvr_;
  int size_ = 0;
};

/// Assembles a batch from `examples[indices[first..first+count)]`.
Batch MakeBatch(const std::vector<Example>& examples,
                const std::vector<std::int64_t>& indices, std::int64_t first,
                int count, const FeatureSchema& schema);

/// Assembles one batch from a contiguous range of a dataset (used by
/// evaluation, which streams a test set in order).
Batch MakeContiguousBatch(const Dataset& dataset, std::int64_t first, int count);

/// Complete serializable position of a Batcher inside its epoch stream:
/// the current epoch's shuffled order plus the cursor. Together with the
/// state of the shuffle Rng this resumes batching bit-exactly mid-epoch.
struct BatcherState {
  std::vector<std::int64_t> order;
  std::int64_t cursor = 0;
  bool fresh_epoch = true;
};

/// The read surface the trainer and checkpointer consume: an epoch-oriented
/// batch stream with a serializable position. Implemented by the in-RAM
/// Batcher and by stream::StreamingBatcher; both honor the same contract —
/// Next() returns false exactly once per epoch boundary, Rewind() replays
/// the current order, SaveState()/RestoreState() resume bit-exactly.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  virtual bool Next(Batch* batch) = 0;
  virtual void Rewind() = 0;
  virtual std::int64_t batches_per_epoch() const = 0;
  /// Total rows per epoch. Manifest-driven for streaming sources, so sizing
  /// never requires the rows to be resident.
  virtual std::int64_t size() const = 0;
  virtual const FeatureSchema& schema() const = 0;
  virtual BatcherState SaveState() const = 0;
  virtual bool RestoreState(const BatcherState& state) = 0;

  /// Streaming sources latch !ok() on I/O or validation failure (fail
  /// closed); the in-RAM batcher can never fail.
  virtual bool ok() const { return true; }
  virtual std::string error() const { return {}; }
};

/// Builds one epoch's visiting order over sharded rows: a seeded permutation
/// of the shards, then a seeded permutation of the rows inside each shard,
/// concatenated as flat global row indices. The result is shard-sequential —
/// rows of one shard are contiguous in the order — which is exactly what
/// lets a streaming reader serve it while holding a single decoded shard.
/// With rng == nullptr the order is the identity. The in-RAM Batcher (given
/// a shard plan) and the StreamingBatcher both call this with the same Rng,
/// which is what makes their epoch streams bit-identical.
std::vector<std::int64_t> ShardedEpochOrder(
    const std::vector<std::int64_t>& shard_rows, Rng* rng);

/// Iterates a dataset in minibatches, reshuffling per epoch when a rng is
/// provided. The final short batch of an epoch is emitted (not dropped).
class Batcher : public BatchSource {
 public:
  /// `rng` may be null for sequential (evaluation) order. Non-owning; must
  /// outlive the batcher. `shard_plan` (per-shard row counts summing to the
  /// dataset size) switches the per-epoch shuffle from one global
  /// permutation to ShardedEpochOrder, mirroring the out-of-core stream for
  /// equivalence runs; empty keeps the historical global shuffle.
  Batcher(const Dataset* dataset, int batch_size, Rng* rng,
          std::vector<std::int64_t> shard_plan = {});

  /// Fills `*batch` with the next minibatch; returns false at epoch end
  /// (after which the next call starts a fresh, reshuffled epoch).
  bool Next(Batch* batch) override;

  /// Restarts the current epoch from the beginning (no reshuffle): the next
  /// Next() replays order_ as-is, even right after an epoch boundary.
  void Rewind() override {
    cursor_ = 0;
    fresh_epoch_ = true;
  }

  std::int64_t batches_per_epoch() const override;
  std::int64_t size() const override { return dataset_->size(); }
  const FeatureSchema& schema() const override { return dataset_->schema(); }

  /// Captures the epoch order and cursor for checkpointing. (The shuffle
  /// Rng is owned by the caller and checkpointed separately.)
  BatcherState SaveState() const override;

  /// Restores a state captured by SaveState(). All-or-nothing: rejects a
  /// state whose order size or cursor does not fit this batcher's dataset,
  /// returning false with the batcher unchanged.
  bool RestoreState(const BatcherState& state) override;

 private:
  void ShuffleIfNeeded();

  const Dataset* dataset_;
  int batch_size_;
  Rng* rng_;
  std::vector<std::int64_t> shard_plan_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
  /// True while order_ is the epoch the caller should (re)play from cursor 0
  /// without a reshuffle. Cleared in exactly one place — the epoch-end branch
  /// of Next() — and set again by the lazy reshuffle, the constructor,
  /// Rewind(), and RestoreState(). Keeping a single clear site is what makes
  /// "each epoch is shuffled exactly once" auditable.
  bool fresh_epoch_ = true;
};

}  // namespace data
}  // namespace dcmt

#endif  // DCMT_DATA_BATCHER_H_

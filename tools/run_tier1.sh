#!/usr/bin/env bash
# Tier-1 verification + perf trajectory, in one command:
#   configure, build, run the full test suite, then run the thread-scaling
#   benchmark and write the machine-readable BENCH_engine.json at the repo
#   root. CI and future PRs compare against that file.
#
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . -DDCMT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Static analysis: the project linter must report a clean tree (DESIGN.md
# §11). Also covered by the dcmt_lint_tree ctest entry; running it
# standalone here gives a readable diagnostic list on failure. Skippable
# with DCMT_SKIP_LINT=1.
if [[ "${DCMT_SKIP_LINT:-0}" != "1" ]]; then
  "$BUILD_DIR"/tools/dcmt_lint --root=. src tests tools
fi

# Hardening pass: rebuild the I/O + serialization + checkpoint layer under
# ASan/UBSan and rerun its tests. Skippable (DCMT_SKIP_SANITIZE=1) because the
# instrumented build roughly doubles tier-1 wall time.
if [[ "${DCMT_SKIP_SANITIZE:-0}" != "1" ]]; then
  SAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$SAN_DIR" -S . \
    -DDCMT_SANITIZE=address,undefined \
    -DDCMT_BUILD_BENCHMARKS=OFF -DDCMT_BUILD_EXAMPLES=OFF
  cmake --build "$SAN_DIR" -j "$JOBS" \
    --target io_test serialize_test checkpoint_test
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS" \
    -R 'Crc32|FileSystem|AtomicWrite|FaultInjection|Serialize|AdamState|Checkpoint'
fi

# Race detection: rebuild the concurrency-heavy suites under ThreadSanitizer
# and run them. TSan is incompatible with ASan, so it gets its own tree.
# Skippable (DCMT_SKIP_TSAN=1) — the instrumented run is the slowest stage.
if [[ "${DCMT_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DDCMT_SANITIZE=thread \
    -DDCMT_BUILD_BENCHMARKS=OFF -DDCMT_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target tsan_stress_test parallel_test
  TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan.supp halt_on_error=1" \
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
    -R 'TsanStress|ThreadPool|ParallelKernels|ParallelTraining|ParallelExperiment'
fi

"$BUILD_DIR"/bench/bench_parallel_scaling \
  --benchmark_out="$BUILD_DIR"/bench_parallel_raw.json \
  --benchmark_out_format=json
"$BUILD_DIR"/tools/bench_to_json "$BUILD_DIR"/bench_parallel_raw.json BENCH_engine.json

echo "tier-1 OK; perf trajectory written to BENCH_engine.json"

#ifndef DCMT_EVAL_CONTINUAL_H_
#define DCMT_EVAL_CONTINUAL_H_

// Continual-training loop with delayed feedback (DESIGN.md §17).
//
// The paper's deployment story is a daily cycle: day-d training data is
// logged under day-(d-1)'s model, conversions attribute days late (the
// *fake negative* problem the whole framework exists for), the model is
// retrained and republished, and day-(d+1) traffic is scored by the fresh
// version. ContinualLoop closes that cycle in-process:
//
//   day d:  score traffic through serve::Router (live version)
//           roll outcomes; conversions land day d + lag (oracle kept)
//           log the day through data::ShardWriter (eventual labels + lag)
//   day d+1 (refresh): re-label rows matured by now, rebuild the as-of
//           training set through the out-of-core streaming path, retrain —
//           warm-started from the previous refresh's eval::Checkpointer
//           state or cold-started, per config — and republish via the
//           drop-free Router::Swap
//
// Everything is deterministic at a fixed thread count: traffic and outcomes
// are stateless keyed draws (eval::RollDayOutcomes), training is the
// checkpointed deterministic TrainLoop, and router scores are bit-exact
// under any micro-batch composition — so two identically-configured runs
// produce byte-identical staleness tables, and a run killed mid-loop
// resumes through the per-refresh checkpoints to the same table.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/io.h"
#include "data/generator.h"
#include "eval/online_ab.h"
#include "eval/trainer.h"
#include "models/multi_task_model.h"

namespace dcmt {
namespace eval {

/// When the loop retrains + republishes.
enum class RefreshCadence {
  kNever,    // pretrained model serves the whole horizon (staleness grows)
  kDaily,    // retrain at each day boundary on data matured through day d-1
  kIntraDay  // daily, plus mid-day refreshes that pick up same-day lag-0
             // conversions (intra_day_segments splits per day)
};

struct ContinualConfig {
  /// Traffic, horizon, lag distribution and drift. `ab.days` is the serving
  /// horizon; `ab.seed` drives traffic and outcomes.
  AbConfig ab;

  /// Model variant under continual training (core::CreateModel name).
  std::string variant = "dcmt";
  models::ModelConfig model;
  /// Per-refresh optimization settings. checkpoint_dir/resume/warm_start_dir
  /// are managed by the loop (one checkpoint directory per refresh);
  /// validation_fraction must be 0 (streaming source).
  TrainConfig train;

  /// Historical (fully matured) exposures the day-0 model is trained on.
  std::int64_t pretrain_exposures = 6000;

  RefreshCadence refresh = RefreshCadence::kDaily;
  /// Segments per day under kIntraDay (>= 2 to actually refresh mid-day).
  int intra_day_segments = 2;
  /// Warm-start each refresh from the previous refresh's checkpoint
  /// (parameters + Adam moments); false = cold-start control arm.
  bool warm_start = true;

  /// Root directory for shard logs, as-of training sets, and checkpoints.
  /// Required. Layout: pretrain/, log-dDDD-sS/, asof-rRRR/, ckpt/rRRR/,
  /// model-pretrain.ckpt.
  std::string work_dir;
  std::int64_t rows_per_shard = 4096;

  /// Serving tier geometry (serve::RouterConfig::num_engines).
  int router_engines = 2;
  /// StreamingBatcher prefetch depth (0 required with a fault-injecting fs).
  int prefetch_depth = 2;

  /// Total optimizer-step budget across every retrain; hitting it stops the
  /// loop abruptly mid-refresh like a kill — no final checkpoint for the
  /// interrupted retrain, result flagged `halted`. A rerun with the same
  /// work_dir and budget 0 resumes through the checkpoints and reproduces
  /// the uninterrupted run byte-for-byte. 0 = no budget.
  std::int64_t halt_after_total_steps = 0;

  /// nullptr = real file system. A FaultInjectingFileSystem requires
  /// prefetch_depth = 0 (it is not thread-safe).
  core::FileSystem* fs = nullptr;
};

/// One serving day of the loop.
struct ContinualDayResult {
  int day = 0;
  /// Days since the serving model was last republished (0 on refresh days;
  /// equals `day` under kNever).
  int days_since_refresh = 0;
  DayMetrics metrics;
  /// CVR AUC of the served pCVR over clicked exposures against oracle
  /// conversion labels (no maturation wait — the oracle is the point).
  double cvr_auc = 0.0;
  /// Entire-space ranking quality: served pCTCVR over all exposures against
  /// the eventual click-and-convert label.
  double pv_cvr_auc = 0.0;
  /// As-of training set composition at the refresh that produced the model
  /// serving this day (0s under kNever after day 0).
  std::int64_t train_rows = 0;
  std::int64_t fake_negatives = 0;  // logged converters not yet matured
  std::int64_t relabeled = 0;       // rows whose label flipped 0 -> 1 now
  std::int64_t retrain_steps = 0;
  double retrain_seconds = 0.0;
};

/// One row of the staleness table: day-level AUCs bucketed by model age.
struct StalenessRow {
  int days_since_refresh = 0;
  int days = 0;  // how many serving days landed in this bucket
  double cvr_auc = 0.0;
  double pv_cvr_auc = 0.0;
  /// Deltas against the staleness-0 bucket (0 when that bucket is absent).
  double delta_cvr_auc = 0.0;
  double delta_pv_cvr_auc = 0.0;
};

struct ContinualResult {
  std::vector<ContinualDayResult> days;
  std::vector<StalenessRow> staleness;
  /// Router requests that did not resolve ok (must be 0: Swap is drop-free
  /// and deadlines are disabled inside the loop).
  std::int64_t dropped_requests = 0;
  std::int64_t swaps = 0;      // republishes after the initial publish
  std::int64_t retrains = 0;   // including pretrain
  std::int64_t total_steps = 0;
  bool halted = false;  // stopped by halt_after_total_steps

  /// Paper-style ASCII tables (AsciiTable): per-day serving metrics and the
  /// staleness aggregation.
  std::string RenderDayTable() const;
  std::string RenderStalenessTable() const;
};

/// Runs the continual cycle. `generator` supplies traffic and ground truth;
/// non-owning, must outlive the call. Aborts on invalid configuration
/// (empty work_dir, unknown variant) and on I/O failure of the shard log —
/// a serving loop that silently loses its log has no valid result.
class ContinualLoop {
 public:
  ContinualLoop(data::SyntheticLogGenerator* generator, ContinualConfig config);

  ContinualResult Run();

 private:
  data::SyntheticLogGenerator* generator_;
  ContinualConfig config_;
};

}  // namespace eval
}  // namespace dcmt

#endif  // DCMT_EVAL_CONTINUAL_H_

#ifndef DCMT_SERVE_ROUTER_H_
#define DCMT_SERVE_ROUTER_H_

// Sharded multi-instance serving tier (DESIGN.md §16).
//
// The paper deploys DCMT in Alipay Search, where pCTR/pCVR serving is a
// fleet, not one process. serve::Router models that fleet in-process: N
// serve::Engine instances (each its own micro-batcher + dispatcher thread)
// front one hot-swappable FrozenModel. Requests are routed to engines by
// consistent-hashing the user id — users are sticky to an engine, so each
// engine's embedding working set is a stable 1/N slice of the traffic — and
// each request's embedding rows are resolved through the per-shard LRU
// caches of a ShardedEmbeddingCache before scoring (the stand-in for the
// remote parameter-store fetch a production tier performs; scoring itself
// uses the replicated in-process model, so scores stay bit-exact).
//
//   * Deadline propagation: every routed request carries an absolute
//     deadline (config.default_deadline_micros unless the caller passes its
//     own budget), which the engine's micro-batcher folds into its flush
//     policy — a batch flushes at min(first-enqueue + max_wait, earliest
//     member deadline).
//   * Overload policy: bounded queue + reject-with-status. The router never
//     blocks a caller; a full engine queue resolves the future immediately
//     with ServeStatus::kRejectedOverload (counted in dcmt::obs), keeping
//     queueing delay bounded instead of letting latency run away past
//     saturation.
//   * Hot model swap: SwappableModel double-buffers two FrozenModel
//     versions behind an atomic active-slot index. Engines pin a version
//     per batch (ModelSource::Acquire/Release), the swap flips the index
//     and waits for the old version's in-flight batches to drain, so every
//     request completes — zero drops — and every response is computed
//     entirely against exactly one version, never a torn mix. Swap() then
//     rebinds + invalidates the embedding caches and returns the retired
//     version to the caller.
//
// This file is a sanctioned concurrency site (dcmt_lint `concurrency`
// rule): it owns the swap atomics and the engine fleet.

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "core/obs.h"
#include "data/example.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"
#include "serve/shard_cache.h"

namespace dcmt {
namespace serve {

/// EmbeddingRowSource over a FrozenModel's shared embedding tables.
class FrozenModelRowSource : public EmbeddingRowSource {
 public:
  explicit FrozenModelRowSource(const FrozenModel* model) : model_(model) {}
  int table_count() const override { return model_->EmbeddingTableCount(); }
  int table_rows(int table) const override {
    return model_->EmbeddingTableRows(table);
  }
  int table_dim(int table) const override {
    return model_->EmbeddingTableDim(table);
  }
  bool Row(int table, int id, std::vector<float>* out) const override {
    return model_->EmbeddingRow(table, id, out);
  }

 private:
  const FrozenModel* model_;
};

/// Double-buffered hot-swappable FrozenModel (the v2-checkpoint publish
/// path's serving end). Readers pin the active version with Acquire and
/// must Release when done; Swap installs a new version into the inactive
/// slot, flips the active index atomically, and blocks until the previous
/// version's pins drain — so the returned retired model is safe to destroy
/// and no reader ever observes a torn version.
class SwappableModel : public ModelSource {
 public:
  explicit SwappableModel(std::unique_ptr<const FrozenModel> initial);

  const FrozenModel* Acquire(std::uint64_t* ticket) override;
  void Release(std::uint64_t ticket) override;

  /// Publishes `next` and retires the current version. Serialized across
  /// callers; blocks until every in-flight pin of the retired version is
  /// released. Never blocks Acquire — readers keep scoring throughout.
  std::unique_ptr<const FrozenModel> Swap(
      std::unique_ptr<const FrozenModel> next);

  /// Currently active version. Stable only while the caller can rule out a
  /// concurrent Swap (tests, setup); scoring paths use Acquire/Release.
  const FrozenModel* active() const {
    return slots_[static_cast<std::size_t>(
                      active_.load(std::memory_order_acquire))]
        .get();
  }

  std::int64_t swaps() const;

 private:
  std::array<std::unique_ptr<const FrozenModel>, 2> slots_;
  std::atomic<int> active_{0};
  std::array<std::atomic<std::int64_t>, 2> inflight_{};
  mutable std::mutex swap_mu_;  // serializes swappers; guards swap_count_
  std::int64_t swap_count_ = 0;
};

/// Router-tier knobs (DESIGN.md §16).
struct RouterConfig {
  /// Engine instances (== embedding cache shards). Production would spread
  /// these over machines; in-process they share core::ThreadPool.
  int num_engines = 2;
  /// Per-engine micro-batcher policy.
  EngineConfig engine;
  /// Request budget applied when Submit is called without a deadline;
  /// <= 0 disables deadline propagation.
  std::int64_t default_deadline_micros = 5000;
  /// Per-shard LRU capacity of the embedding row cache.
  int cache_rows_per_shard = 4096;
  /// Virtual nodes per shard on both hash rings.
  int ring_replicas = 64;
};

/// Aggregated router counters (engine stats summed over the fleet).
struct RouterStats {
  std::int64_t routed = 0;     // requests accepted into some engine's queue
  std::int64_t scored = 0;
  std::int64_t rejected_overload = 0;
  std::int64_t rejected_shutdown = 0;
  std::int64_t swaps = 0;
  ShardCacheStats cache;
  std::vector<EngineStats> per_engine;
};

/// The serving fleet front end. Thread-safe: any number of client threads
/// may Submit concurrently with one thread calling Swap.
class Router {
 public:
  explicit Router(std::unique_ptr<const FrozenModel> model,
                  RouterConfig config = {});
  ~Router();  // == Shutdown()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one request: resolves its embedding rows through the owning
  /// shard caches, then enqueues into the user's engine with the given
  /// budget (config.default_deadline_micros when omitted). Never blocks:
  /// overload or shutdown resolve the future immediately with the
  /// corresponding rejection status.
  std::future<Score> Submit(const data::Example& example);
  std::future<Score> Submit(const data::Example& example,
                            std::int64_t deadline_micros);

  /// Submit + wait.
  Score ScoreSync(const data::Example& example);

  /// Zero-drop hot model swap; see SwappableModel::Swap. Also rebinds and
  /// invalidates the embedding caches so resident rows never outlive the
  /// version they were fetched from. Returns the retired version.
  std::unique_ptr<const FrozenModel> Swap(
      std::unique_ptr<const FrozenModel> next);

  /// Drains every engine and stops accepting work. Idempotent.
  void Shutdown();

  RouterStats stats() const;

  /// Engine owning `user` under the routing ring (exposed for tests).
  int EngineFor(std::int64_t user) const;
  int num_engines() const { return static_cast<int>(engines_.size()); }
  const Engine& engine(int i) const {
    return *engines_[static_cast<std::size_t>(i)];
  }
  const SwappableModel& model() const { return model_; }
  /// Embedding cache (shared across engines; exposed for tests).
  ShardedEmbeddingCache& cache() { return cache_; }

 private:
  void ResolveEmbeddings(const data::Example& example);

  RouterConfig config_;
  SwappableModel model_;
  std::unique_ptr<FrozenModelRowSource> row_source_;  // active version's rows
  ConsistentHashRing user_ring_;
  ShardedEmbeddingCache cache_;
  std::vector<std::unique_ptr<Engine>> engines_;
  int deep_fields_;
  int wide_fields_;

  obs::Counter obs_requests_;
  obs::Counter obs_swaps_;
  obs::Counter obs_cache_hits_;
  obs::Counter obs_cache_misses_;
};

}  // namespace serve
}  // namespace dcmt

#endif  // DCMT_SERVE_ROUTER_H_

# Empty compiler generated dependencies file for dcmt_optim.
# This may be replaced when dependencies are built.

// Streaming data path performance (DESIGN.md §15).
//
// Three numbers back the out-of-core design:
//   * ShardWrite / ShardDecode — MB/s through the columnar shard codec
//     (encode includes the CRC framing; decode includes the full fail-closed
//     validation chain, which is the honest cost of every production read);
//   * StreamingEpoch at prefetch 0 vs 2 — one full epoch of batch assembly
//     through the StreamingBatcher. The prefetch-0 run pays decode and
//     assembly serially; with prefetch the decode overlaps assembly, and the
//     ratio of the two times is the overlap win recorded in
//     BENCH_engine.json.
//
// All entries fold into BENCH_engine.json via tools/bench_to_json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/io.h"
#include "core/thread_pool.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "data/shard.h"
#include "data/stream.h"
#include "tensor/random.h"

namespace dcmt {
namespace {

constexpr std::int64_t kRows = 65536;
constexpr std::int64_t kRowsPerShard = 8192;

data::SyntheticLogGenerator& Generator() {
  static data::SyntheticLogGenerator generator([] {
    data::DatasetProfile profile = data::AeEsProfile();
    profile.train_exposures = kRows;
    return profile;
  }());
  return generator;
}

/// One shard's worth of rows, drawn once.
const std::vector<data::Example>& ShardRows() {
  static const std::vector<data::Example> rows = [] {
    Rng rng(1234);
    std::vector<data::Example> drawn;
    drawn.reserve(static_cast<std::size_t>(kRowsPerShard));
    for (std::int64_t i = 0; i < kRowsPerShard; ++i) {
      drawn.push_back(Generator().DrawExposure(&rng));
    }
    return drawn;
  }();
  return rows;
}

/// A shard directory with kRows rows, generated once per process.
const std::string& ShardDir() {
  static const std::string dir = [] {
    const std::string path = "/tmp/dcmt_bench_stream_shards";
    data::ShardWriterConfig config;
    config.rows_per_shard = kRowsPerShard;
    std::string error;
    if (!Generator().GenerateToShards(path, kRows, /*stream=*/1, config,
                                      &error)) {
      std::fprintf(stderr, "bench_stream: %s\n", error.c_str());
      std::abort();
    }
    return path;
  }();
  return dir;
}

void BM_ShardEncode(benchmark::State& state) {
  const data::FeatureSchema schema = Generator().Schema();
  std::string image;
  for (auto _ : state) {
    image = data::EncodeShardImage(schema, /*shard_index=*/0, ShardRows());
    benchmark::DoNotOptimize(image.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kRowsPerShard),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardEncode)->Unit(benchmark::kMillisecond);

void BM_ShardDecode(benchmark::State& state) {
  const std::string& dir = ShardDir();
  data::ShardManifest manifest;
  std::string error;
  if (!data::ReadManifest(nullptr, dir, &manifest, &error)) std::abort();
  const std::string path = dir + "/" + data::ShardFileName(0);
  std::vector<data::Example> rows;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    rows.clear();
    if (!data::ReadShardFile(nullptr, path, manifest, /*shard_index=*/0, &rows,
                             &error)) {
      std::fprintf(stderr, "bench_stream: %s\n", error.c_str());
      std::abort();
    }
    benchmark::DoNotOptimize(rows.data());
  }
  {
    // Size the throughput by the on-disk image (decode reads every byte).
    std::string image;
    std::unique_ptr<core::FileReader> reader =
        core::FileSystem::Default()->OpenForRead(path);
    if (reader != nullptr && reader->ReadAll(&image)) {
      bytes = static_cast<std::int64_t>(image.size());
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * bytes);
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() *
                          static_cast<std::int64_t>(rows.size())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardDecode)->Unit(benchmark::kMillisecond);

/// One full epoch of batch assembly through the StreamingBatcher at the
/// given prefetch depth. depth 0 = serial decode (the baseline the overlap
/// ratio is measured against).
void StreamingEpoch(benchmark::State& state, int prefetch_depth) {
  core::ThreadPool::Global().SetNumThreads(1);
  data::StreamingDataset dataset;
  std::string error;
  if (!data::StreamingDataset::Open(ShardDir(), {}, &dataset, &error)) {
    std::fprintf(stderr, "bench_stream: %s\n", error.c_str());
    std::abort();
  }
  for (auto _ : state) {
    Rng rng(7);
    data::StreamingBatcher batcher(&dataset, 1024, &rng, prefetch_depth);
    data::Batch batch;
    std::int64_t rows = 0;
    while (batcher.Next(&batch)) rows += batch.size;
    if (rows != dataset.size() || !batcher.ok()) std::abort();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          dataset.size());
}

void BM_StreamingEpochNoPrefetch(benchmark::State& state) {
  StreamingEpoch(state, /*prefetch_depth=*/0);
}
BENCHMARK(BM_StreamingEpochNoPrefetch)->Unit(benchmark::kMillisecond);

void BM_StreamingEpochPrefetch2(benchmark::State& state) {
  StreamingEpoch(state, /*prefetch_depth=*/2);
}
BENCHMARK(BM_StreamingEpochPrefetch2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dcmt

BENCHMARK_MAIN();

#ifndef DCMT_MODELS_CROSS_STITCH_H_
#define DCMT_MODELS_CROSS_STITCH_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "models/common.h"
#include "models/multi_task_model.h"

namespace dcmt {
namespace models {

/// Cross-Stitch networks (Misra et al., CVPR 2016), applied to CTR/CVR as in
/// the paper's multi-gate MTL baseline group. Two parallel towers whose
/// activations are linearly recombined after every hidden layer by learnable
/// 2x2 stitch units:
///   h_ctr' = s11 * h_ctr + s12 * h_cvr
///   h_cvr' = s21 * h_ctr + s22 * h_cvr
/// Stitch weights initialize to (0.9 own / 0.1 other).
class CrossStitch : public MultiTaskModel {
 public:
  CrossStitch(const data::FeatureSchema& schema, const ModelConfig& config);

  Predictions Forward(const data::Batch& batch) override;
  Tensor Loss(const data::Batch& batch, const Predictions& preds) override;
  std::string name() const override { return "cross-stitch"; }

 private:
  ModelConfig config_;
  std::unique_ptr<SharedEmbeddings> embeddings_;
  std::vector<std::unique_ptr<nn::Linear>> ctr_layers_;
  std::vector<std::unique_ptr<nn::Linear>> cvr_layers_;
  // Per hidden layer: s11, s12, s21, s22 as [1 x 1] parameters.
  std::vector<std::array<Tensor, 4>> stitches_;
  std::unique_ptr<nn::Linear> ctr_head_;
  std::unique_ptr<nn::Linear> cvr_head_;
};

}  // namespace models
}  // namespace dcmt

#endif  // DCMT_MODELS_CROSS_STITCH_H_

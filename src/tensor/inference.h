#ifndef DCMT_TENSOR_INFERENCE_H_
#define DCMT_TENSOR_INFERENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcmt {

/// Scoped inference mode for the tensor engine (DESIGN.md §13).
///
/// While a guard is alive on a thread, every tensor the thread creates is a
/// pure value: requires_grad is forced off, MakeNode stores no parent edges,
/// and — because every op in ops.cc gates its backward closure on
/// out.requires_grad() — no backward closures are captured. Forward values
/// are bit-identical to the taped path (the kernels never read graph state),
/// which is the serving parity contract serve::FrozenModel is built on.
///
/// Activation storage under a guard is drawn from a per-thread arena: a
/// freelist of float buffers recycled across ScoreBatch calls, so steady-
/// state serving performs no large allocations. Buffers return to the arena
/// when the tensor dies while a guard is active on the destroying thread;
/// tensors that escape the scope free their storage normally.
///
/// Guards nest (a guarded region may call a helper that takes its own
/// guard) and are strictly per-thread: concurrent training on other threads
/// keeps building tapes untouched.
class InferenceGuard {
 public:
  InferenceGuard();
  ~InferenceGuard();
  InferenceGuard(const InferenceGuard&) = delete;
  InferenceGuard& operator=(const InferenceGuard&) = delete;

  /// True while any InferenceGuard is alive on the calling thread.
  static bool Active();
};

namespace inference {

/// Counters of the calling thread's activation arena.
struct ArenaStats {
  std::int64_t acquires = 0;        // buffers requested under a guard
  std::int64_t reuses = 0;          // of those, served from the freelist
  std::int64_t releases = 0;        // buffers returned to the freelist
  std::int64_t pooled_buffers = 0;  // currently idle in the freelist
  std::int64_t pooled_floats = 0;   // idle capacity, in floats
};

/// Snapshot of this thread's arena counters (tests, serve-bench reporting).
ArenaStats ThreadArenaStats();

/// Drops every pooled buffer of this thread's arena (tests; also useful
/// before thread exit on long-lived dispatchers to bound idle memory).
void ClearThreadArena();

// --- Internal seam used by tensor.cc; not part of the modeling API. --------

/// Returns a zero-filled buffer of `n` floats, recycling freelist storage
/// when possible. Only called while InferenceGuard::Active().
std::vector<float> AcquireBuffer(std::size_t n);

/// Returns a buffer to the calling thread's freelist.
void ReleaseBuffer(std::vector<float>&& buffer);

}  // namespace inference
}  // namespace dcmt

#endif  // DCMT_TENSOR_INFERENCE_H_

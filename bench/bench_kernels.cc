// Per-kernel microbenchmarks of the SIMD tensor layer (DESIGN.md §14):
// the GEMM at the exact shapes the default towers run (ModelConfig
// hidden_dims {64, 32} on the AE-ES schema at batch 1024), the vectorized
// elementwise family, and each fused op next to the unfused composite it
// replaces — so BENCH_engine.json reports the fusion win per kernel.
//
// tools/run_tier1.sh folds this binary's JSON output into BENCH_engine.json
// via tools/bench_to_json alongside the scaling/obs/serve benches.

#include <benchmark/benchmark.h>

#include "data/profiles.h"
#include "data/schema.h"
#include "models/multi_task_model.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace {

using namespace dcmt;

constexpr int kBatch = 1024;

/// Deep-tower input width on the default AE-ES schema: #deep fields times
/// the default embedding dim.
int TowerInputWidth() {
  static const int width = [] {
    const data::FeatureSchema schema =
        data::SyntheticLogGenerator(data::AeEsProfile()).GenerateTrain().schema();
    return static_cast<int>(schema.deep_fields.size()) *
           models::ModelConfig().embedding_dim;
  }();
  return width;
}

// --- GEMM at the actual tower shapes -----------------------------------------

void TowerMatMul(benchmark::State& state, int m, int k, int n) {
  Rng rng(1);
  Tensor a = Tensor::Randn(m, k, 1.0f, &rng);
  Tensor b = Tensor::Randn(k, n, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = ops::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m) *
                          k * n);
}

void BM_MatMulTowerLayer1(benchmark::State& state) {
  TowerMatMul(state, kBatch, TowerInputWidth(), 64);
}
BENCHMARK(BM_MatMulTowerLayer1);

void BM_MatMulTowerLayer2(benchmark::State& state) {
  TowerMatMul(state, kBatch, 64, 32);
}
BENCHMARK(BM_MatMulTowerLayer2);

void BM_MatMulTowerHead(benchmark::State& state) {
  TowerMatMul(state, kBatch, 32, 1);
}
BENCHMARK(BM_MatMulTowerHead);

// --- Vectorized elementwise family -------------------------------------------

void Elementwise(benchmark::State& state, Tensor (*op)(const Tensor&)) {
  Rng rng(2);
  Tensor x = Tensor::Uniform(512, 128, -4.0f, 4.0f, &rng);
  for (auto _ : state) {
    Tensor y = op(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}

void BM_Sigmoid(benchmark::State& state) { Elementwise(state, ops::Sigmoid); }
BENCHMARK(BM_Sigmoid);
void BM_Tanh(benchmark::State& state) { Elementwise(state, ops::Tanh); }
BENCHMARK(BM_Tanh);
void BM_Exp(benchmark::State& state) { Elementwise(state, ops::Exp); }
BENCHMARK(BM_Exp);
void BM_Softplus(benchmark::State& state) { Elementwise(state, ops::Softplus); }
BENCHMARK(BM_Softplus);
void BM_Relu(benchmark::State& state) { Elementwise(state, ops::Relu); }
BENCHMARK(BM_Relu);

// --- Fused vs unfused pairs --------------------------------------------------
// Each pair runs the identical computation; the *_Unfused variant builds the
// intermediate tensors the fused kernel eliminates.

void BM_SigmoidBceFused(benchmark::State& state) {
  Rng rng(3);
  Tensor z = Tensor::Uniform(kBatch, 1, -4.0f, 4.0f, &rng);
  Tensor y = Tensor::Uniform(kBatch, 1, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    Tensor loss = ops::SigmoidBce(z, y);
    benchmark::DoNotOptimize(loss.data());
  }
}
BENCHMARK(BM_SigmoidBceFused);

void BM_SigmoidBceUnfused(benchmark::State& state) {
  Rng rng(3);
  Tensor z = Tensor::Uniform(kBatch, 1, -4.0f, 4.0f, &rng);
  Tensor y = Tensor::Uniform(kBatch, 1, 0.0f, 1.0f, &rng);
  for (auto _ : state) {
    Tensor loss = ops::BceLoss(ops::Sigmoid(z), y);
    benchmark::DoNotOptimize(loss.data());
  }
}
BENCHMARK(BM_SigmoidBceUnfused);

/// AE-ES-like embedding workload: 8 fields, dim-16 tables, batch 1024.
struct EmbedFixture {
  std::vector<Tensor> tables;
  std::vector<std::vector<int>> ids;
  EmbedFixture() {
    Rng rng(4);
    const int fields = 8, vocab = 2000, dim = 16;
    for (int f = 0; f < fields; ++f) {
      tables.push_back(Tensor::Randn(vocab, dim, 0.1f, &rng));
      std::vector<int> field;
      for (int i = 0; i < kBatch; ++i) {
        field.push_back((i * 37 + f * 13) % vocab);
      }
      ids.push_back(std::move(field));
    }
  }
};

void BM_EmbeddingConcatFused(benchmark::State& state) {
  EmbedFixture fx;
  for (auto _ : state) {
    Tensor out = ops::EmbeddingConcat(fx.tables, fx.ids);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch * 8 * 16);
}
BENCHMARK(BM_EmbeddingConcatFused);

void BM_EmbeddingConcatUnfused(benchmark::State& state) {
  EmbedFixture fx;
  for (auto _ : state) {
    Tensor out = ops::reference::EmbeddingConcat(fx.tables, fx.ids);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch * 8 * 16);
}
BENCHMARK(BM_EmbeddingConcatUnfused);

void ReductionPair(benchmark::State& state, bool fused,
                   Tensor (*f)(const Tensor&), Tensor (*ref)(const Tensor&)) {
  Rng rng(5);
  Tensor a = Tensor::Uniform(512, 128, -1.0f, 1.0f, &rng);
  for (auto _ : state) {
    Tensor out = fused ? f(a) : ref(a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}

void BM_MeanFused(benchmark::State& state) {
  ReductionPair(state, true, ops::Mean, ops::reference::Mean);
}
BENCHMARK(BM_MeanFused);
void BM_MeanUnfused(benchmark::State& state) {
  ReductionPair(state, false, ops::Mean, ops::reference::Mean);
}
BENCHMARK(BM_MeanUnfused);

void BM_SquaredNormFused(benchmark::State& state) {
  ReductionPair(state, true, ops::SquaredNorm, ops::reference::SquaredNorm);
}
BENCHMARK(BM_SquaredNormFused);
void BM_SquaredNormUnfused(benchmark::State& state) {
  ReductionPair(state, false, ops::SquaredNorm, ops::reference::SquaredNorm);
}
BENCHMARK(BM_SquaredNormUnfused);

void BM_WeightedSumFused(benchmark::State& state) {
  Rng rng(6);
  Tensor a = Tensor::Uniform(512, 128, -1.0f, 1.0f, &rng);
  Tensor w = Tensor::Uniform(512, 128, -1.0f, 1.0f, &rng);
  for (auto _ : state) {
    Tensor out = ops::WeightedSum(a, w);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_WeightedSumFused);

void BM_WeightedSumUnfused(benchmark::State& state) {
  Rng rng(6);
  Tensor a = Tensor::Uniform(512, 128, -1.0f, 1.0f, &rng);
  Tensor w = Tensor::Uniform(512, 128, -1.0f, 1.0f, &rng);
  for (auto _ : state) {
    Tensor out = ops::reference::WeightedSum(a, w);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_WeightedSumUnfused);

}  // namespace

BENCHMARK_MAIN();

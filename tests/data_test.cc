// Tests for the data substrate: dataset containers, the synthetic log
// generator's structural properties (calibration, NMAR coupling, fake
// negatives, determinism), batching, and CSV round-trips.

#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "metrics/metrics.h"

namespace dcmt {
namespace {

data::DatasetProfile SmallProfile() {
  data::DatasetProfile p;
  p.name = "unit";
  p.num_users = 200;
  p.num_items = 300;
  p.train_exposures = 8000;
  p.test_exposures = 4000;
  p.target_click_rate = 0.10;
  p.target_cvr_given_click = 0.20;
  p.seed = 99;
  return p;
}

TEST(DatasetTest, StatsCountsAreConsistent) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  const data::DatasetStats s = train.Stats();
  EXPECT_EQ(s.exposures, 8000);
  EXPECT_GT(s.clicks, 0);
  EXPECT_GT(s.conversions, 0);
  EXPECT_LE(s.conversions, s.clicks);
  EXPECT_LE(s.clicks, s.exposures);
  EXPECT_GE(s.oracle_conversions, s.conversions);
  EXPECT_EQ(s.fake_negatives, s.oracle_conversions - s.conversions);
}

TEST(DatasetTest, ConversionImpliesClick) {
  data::SyntheticLogGenerator gen(SmallProfile());
  // Bind the dataset: ranging over a temporary's examples() would dangle.
  const data::Dataset train = gen.GenerateTrain();
  for (const data::Example& e : train.examples()) {
    if (e.conversion == 1) {
      EXPECT_EQ(e.click, 1);
    }
  }
}

TEST(DatasetTest, ClickedSubsetFilters) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  const data::Dataset clicked = train.ClickedSubset();
  const data::Dataset nonclicked = train.NonClickedSubset();
  EXPECT_EQ(clicked.size() + nonclicked.size(), train.size());
  for (const data::Example& e : clicked.examples()) EXPECT_EQ(e.click, 1);
  for (const data::Example& e : nonclicked.examples()) EXPECT_EQ(e.click, 0);
}

TEST(DatasetTest, SplitAtPreservesOrderAndTotal) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  const auto [head, tail] = train.SplitAt(1000);
  EXPECT_EQ(head.size(), 1000);
  EXPECT_EQ(head.size() + tail.size(), train.size());
  EXPECT_EQ(head.examples()[0].user_index, train.examples()[0].user_index);
  EXPECT_EQ(tail.examples()[0].user_index, train.examples()[1000].user_index);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  data::SyntheticLogGenerator a(SmallProfile());
  data::SyntheticLogGenerator b(SmallProfile());
  const data::Dataset da = a.GenerateTrain();
  const data::Dataset db = b.GenerateTrain();
  ASSERT_EQ(da.size(), db.size());
  for (std::int64_t i = 0; i < da.size(); i += 997) {
    const auto& ea = da.examples()[static_cast<std::size_t>(i)];
    const auto& eb = db.examples()[static_cast<std::size_t>(i)];
    EXPECT_EQ(ea.deep_ids, eb.deep_ids);
    EXPECT_EQ(ea.click, eb.click);
    EXPECT_EQ(ea.conversion, eb.conversion);
    EXPECT_FLOAT_EQ(ea.true_ctr, eb.true_ctr);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  data::DatasetProfile p1 = SmallProfile();
  data::DatasetProfile p2 = SmallProfile();
  p2.seed = 100;
  data::SyntheticLogGenerator a(p1), b(p2);
  EXPECT_NE(a.GenerateTrain().Stats().clicks, b.GenerateTrain().Stats().clicks);
}

TEST(GeneratorTest, TrainAndTestAreIndependentDraws) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  const data::Dataset test = gen.GenerateTest();
  EXPECT_NE(train.examples()[0].user_index, test.examples()[0].user_index);
}

TEST(GeneratorTest, CalibrationHitsTargetRates) {
  const data::DatasetProfile p = SmallProfile();
  data::SyntheticLogGenerator gen(p);
  const data::DatasetStats s = gen.GenerateTrain().Stats();
  EXPECT_NEAR(s.click_rate, p.target_click_rate, p.target_click_rate * 0.35);
  EXPECT_NEAR(s.cvr_given_click, p.target_cvr_given_click,
              p.target_cvr_given_click * 0.5);
}

TEST(GeneratorTest, PropensitiesMatchLabels) {
  // Mean true_ctr should match realized click rate (generator consistency).
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  double mean_p = 0.0, clicks = 0.0;
  for (const data::Example& e : train.examples()) {
    mean_p += e.true_ctr;
    clicks += e.click;
  }
  mean_p /= static_cast<double>(train.size());
  clicks /= static_cast<double>(train.size());
  EXPECT_NEAR(mean_p, clicks, 0.01);
}

TEST(GeneratorTest, TrueCtrIsInformative) {
  // AUC of the oracle propensity against realized clicks must be far above
  // chance — otherwise the whole benchmark is unlearnable.
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset test = gen.GenerateTest();
  std::vector<float> scores;
  std::vector<std::uint8_t> labels;
  for (const data::Example& e : test.examples()) {
    scores.push_back(e.true_ctr);
    labels.push_back(e.click);
  }
  EXPECT_GT(metrics::Auc(scores, labels), 0.75);
}

TEST(GeneratorTest, SelectionBiasIsPresent) {
  // NMAR: conversion propensity must be higher among clicked exposures than
  // non-clicked ones (the α-coupling) — this is the bias DCMT attacks.
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  double cvr_clicked = 0.0, cvr_nonclicked = 0.0;
  std::int64_t n_clicked = 0, n_nonclicked = 0;
  for (const data::Example& e : train.examples()) {
    if (e.click) {
      cvr_clicked += e.true_cvr;
      ++n_clicked;
    } else {
      cvr_nonclicked += e.true_cvr;
      ++n_nonclicked;
    }
  }
  cvr_clicked /= static_cast<double>(n_clicked);
  cvr_nonclicked /= static_cast<double>(n_nonclicked);
  EXPECT_GT(cvr_clicked, cvr_nonclicked * 1.2);
}

TEST(GeneratorTest, NoCouplingRemovesSelectionBias) {
  // Zero both couplings: conversion propensity decouples from clicks
  // (an MCAR-ish control world).
  data::DatasetProfile p = SmallProfile();
  p.click_conv_coupling = 0.0f;
  p.hidden_coupling = 0.0f;
  data::SyntheticLogGenerator gen(p);
  const data::Dataset train = gen.GenerateTrain();
  double cvr_clicked = 0.0, cvr_nonclicked = 0.0;
  std::int64_t n_clicked = 0, n_nonclicked = 0;
  for (const data::Example& e : train.examples()) {
    if (e.click) {
      cvr_clicked += e.true_cvr;
      ++n_clicked;
    } else {
      cvr_nonclicked += e.true_cvr;
      ++n_nonclicked;
    }
  }
  cvr_clicked /= static_cast<double>(n_clicked);
  cvr_nonclicked /= static_cast<double>(n_nonclicked);
  EXPECT_LT(cvr_clicked / cvr_nonclicked, 1.25);
}

TEST(GeneratorTest, FakeNegativesExistInNonClickSpace) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::DatasetStats s = gen.GenerateTrain().Stats();
  EXPECT_GT(s.fake_negatives, 0);
}

TEST(GeneratorTest, PositionDecayLowersClickProbability) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const float p0 = gen.TrueClickProbability(5, 7, 0);
  const float p9 = gen.TrueClickProbability(5, 7, 9);
  EXPECT_GT(p0, p9);
}

TEST(GeneratorTest, FeatureIdsWithinVocab) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  const auto& schema = train.schema();
  for (const data::Example& e : train.examples()) {
    ASSERT_EQ(e.deep_ids.size(), schema.deep_fields.size());
    for (std::size_t f = 0; f < e.deep_ids.size(); ++f) {
      EXPECT_GE(e.deep_ids[f], 0);
      EXPECT_LT(e.deep_ids[f], schema.deep_fields[f].vocab_size);
    }
    ASSERT_EQ(e.wide_ids.size(), schema.wide_fields.size());
    for (std::size_t f = 0; f < e.wide_ids.size(); ++f) {
      EXPECT_GE(e.wide_ids[f], 0);
      EXPECT_LT(e.wide_ids[f], schema.wide_fields[f].vocab_size);
    }
  }
}

/// Property sweep over every shipped dataset profile (scaled-down clones so
/// the suite stays fast): calibration, NMAR structure and feature validity
/// must hold for each profile, not just the unit-test one.
class ProfilePropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  static data::DatasetProfile ScaledDown(const std::string& name) {
    data::DatasetProfile p = data::ProfileByName(name);
    p.train_exposures = 12000;
    p.test_exposures = 4000;
    return p;
  }
};

TEST_P(ProfilePropertyTest, CalibrationNearTarget) {
  const data::DatasetProfile p = ScaledDown(GetParam());
  data::SyntheticLogGenerator gen(p);
  const data::DatasetStats s = gen.GenerateTrain().Stats();
  EXPECT_NEAR(s.click_rate, p.target_click_rate, p.target_click_rate * 0.35)
      << GetParam();
  EXPECT_NEAR(s.cvr_given_click, p.target_cvr_given_click,
              p.target_cvr_given_click * 0.5)
      << GetParam();
}

TEST_P(ProfilePropertyTest, NmarBiasPresent) {
  data::SyntheticLogGenerator gen(ScaledDown(GetParam()));
  const data::Dataset train = gen.GenerateTrain();
  double cvr_clicked = 0.0, cvr_nonclicked = 0.0;
  std::int64_t n_clicked = 0, n_nonclicked = 0;
  for (const data::Example& e : train.examples()) {
    if (e.click) {
      cvr_clicked += e.true_cvr;
      ++n_clicked;
    } else {
      cvr_nonclicked += e.true_cvr;
      ++n_nonclicked;
    }
  }
  ASSERT_GT(n_clicked, 0);
  ASSERT_GT(n_nonclicked, 0);
  EXPECT_GT(cvr_clicked / n_clicked, cvr_nonclicked / n_nonclicked)
      << GetParam();
}

TEST_P(ProfilePropertyTest, OraclePropensityInformative) {
  data::SyntheticLogGenerator gen(ScaledDown(GetParam()));
  const data::Dataset test = gen.GenerateTest();
  std::vector<float> scores;
  std::vector<std::uint8_t> labels;
  for (const data::Example& e : test.examples()) {
    scores.push_back(e.true_ctr);
    labels.push_back(e.click);
  }
  EXPECT_GT(metrics::Auc(scores, labels), 0.7) << GetParam();
}

TEST_P(ProfilePropertyTest, DeterministicStats) {
  data::SyntheticLogGenerator a(ScaledDown(GetParam()));
  data::SyntheticLogGenerator b(ScaledDown(GetParam()));
  const data::DatasetStats sa = a.GenerateTrain().Stats();
  const data::DatasetStats sb = b.GenerateTrain().Stats();
  EXPECT_EQ(sa.clicks, sb.clicks) << GetParam();
  EXPECT_EQ(sa.conversions, sb.conversions) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfilePropertyTest,
                         ::testing::Values("ali-ccp", "ae-es", "ae-fr", "ae-nl",
                                           "ae-us", "alipay-search"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ProfilesTest, AllProfilesConstructAndAreDistinct) {
  const auto profiles = data::AllOfflineProfiles();
  ASSERT_EQ(profiles.size(), 5u);
  std::set<std::string> names;
  for (const auto& p : profiles) names.insert(p.name);
  EXPECT_EQ(names.size(), 5u);
}

TEST(ProfilesTest, LookupByNameMatches) {
  EXPECT_EQ(data::ProfileByName("ae-nl").name, "ae-nl");
  EXPECT_EQ(data::ProfileByName("ali-ccp").target_cvr_given_click, 0.06);
}

TEST(ProfilesTest, AliCcpIsConversionSparsest) {
  // The paper's Table II ordering: Ali-CCP has the lowest CVR|click.
  for (const auto& p : data::AllOfflineProfiles()) {
    if (p.name != "ali-ccp") {
      EXPECT_LT(data::AliCcpProfile().target_cvr_given_click,
                p.target_cvr_given_click);
    }
  }
}

TEST(BatcherTest, CoversEveryExampleExactlyOnce) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  Rng rng(5);
  data::Batcher batcher(&train, 512, &rng);
  data::Batch batch;
  std::int64_t seen = 0;
  while (batcher.Next(&batch)) seen += batch.size;
  EXPECT_EQ(seen, train.size());
}

TEST(BatcherTest, ReshufflesBetweenEpochs) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  Rng rng(6);
  data::Batcher batcher(&train, 256, &rng);
  data::Batch batch;
  ASSERT_TRUE(batcher.Next(&batch));
  const std::vector<int> first_epoch_ids = batch.deep_ids[0];
  while (batcher.Next(&batch)) {
  }
  ASSERT_TRUE(batcher.Next(&batch));
  EXPECT_NE(batch.deep_ids[0], first_epoch_ids);
}

TEST(BatcherTest, SequentialWithoutRng) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  data::Batcher batcher(&train, 100, nullptr);
  data::Batch batch;
  ASSERT_TRUE(batcher.Next(&batch));
  for (int i = 0; i < batch.size; ++i) {
    EXPECT_EQ(batch.deep_ids[0][static_cast<std::size_t>(i)],
              train.examples()[static_cast<std::size_t>(i)].deep_ids[0]);
  }
}

TEST(BatcherTest, LabelsMatchExamples) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  const data::Batch batch = data::MakeContiguousBatch(train, 100, 50);
  for (int i = 0; i < 50; ++i) {
    const data::Example& e = train.examples()[static_cast<std::size_t>(100 + i)];
    EXPECT_EQ(batch.click.at(i, 0), static_cast<float>(e.click));
    EXPECT_EQ(batch.conversion.at(i, 0), static_cast<float>(e.conversion));
    EXPECT_EQ(batch.ctcvr.at(i, 0),
              static_cast<float>(e.click && e.conversion ? 1 : 0));
  }
}

TEST(BatcherTest, StateSavedAtConstructionIsTheTrainedOrder) {
  // Regression: the first epoch must be shuffled exactly once, at
  // construction, so SaveState() taken before any Next() call captures
  // exactly the order the first epoch then trains on.
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  Rng rng(17);
  data::Batcher batcher(&train, 512, &rng);
  const data::BatcherState pristine = batcher.SaveState();
  EXPECT_EQ(pristine.cursor, 0);
  EXPECT_TRUE(pristine.fresh_epoch);

  data::Batch batch;
  std::vector<std::int64_t> trained_order;
  std::int64_t cursor = 0;
  while (batcher.Next(&batch)) {
    for (int i = 0; i < batch.size; ++i) {
      trained_order.push_back(pristine.order[cursor + i]);
      EXPECT_EQ(batch.deep_ids[0][static_cast<std::size_t>(i)],
                train.examples()[static_cast<std::size_t>(
                                     pristine.order[cursor + i])]
                    .deep_ids[0]);
    }
    cursor += batch.size;
  }
  EXPECT_EQ(cursor, train.size());
  EXPECT_EQ(trained_order, pristine.order);
}

TEST(BatcherTest, RewindReplaysWithoutReshuffleEvenAfterEpochEnd) {
  // Regression: Rewind() used to leave the stale not-fresh flag in place, so
  // a rewind issued right after an epoch boundary reshuffled on the next
  // Next() instead of replaying the epoch it promised to restart.
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();
  Rng rng(18);
  data::Batcher batcher(&train, 256, &rng);
  data::Batch batch;
  while (batcher.Next(&batch)) {
  }
  const std::vector<std::int64_t> epoch_order = batcher.SaveState().order;
  batcher.Rewind();
  ASSERT_TRUE(batcher.Next(&batch));
  EXPECT_EQ(batcher.SaveState().order, epoch_order);
  for (int i = 0; i < batch.size; ++i) {
    EXPECT_EQ(batch.deep_ids[0][static_cast<std::size_t>(i)],
              train.examples()[static_cast<std::size_t>(epoch_order[
                                   static_cast<std::size_t>(i)])]
                  .deep_ids[0]);
  }
}

TEST(BatcherTest, BatchesPerEpochRoundsUp) {
  data::SyntheticLogGenerator gen(SmallProfile());
  const data::Dataset train = gen.GenerateTrain();  // 8000
  data::Batcher batcher(&train, 3000, nullptr);
  EXPECT_EQ(batcher.batches_per_epoch(), 3);
}

TEST(CsvTest, RoundTripPreservesEverything) {
  data::DatasetProfile p = SmallProfile();
  p.train_exposures = 500;
  data::SyntheticLogGenerator gen(p);
  const data::Dataset original = gen.GenerateTrain();
  const std::string path = ::testing::TempDir() + "/dcmt_roundtrip.csv";
  ASSERT_TRUE(data::WriteCsv(original, path));

  data::Dataset loaded;
  ASSERT_TRUE(data::ReadCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.schema().deep_fields.size(),
            original.schema().deep_fields.size());
  EXPECT_EQ(loaded.schema().wide_fields.size(),
            original.schema().wide_fields.size());
  for (std::size_t f = 0; f < original.schema().deep_fields.size(); ++f) {
    EXPECT_EQ(loaded.schema().deep_fields[f].name,
              original.schema().deep_fields[f].name);
    EXPECT_EQ(loaded.schema().deep_fields[f].vocab_size,
              original.schema().deep_fields[f].vocab_size);
  }
  for (std::int64_t i = 0; i < original.size(); i += 37) {
    const auto& a = original.examples()[static_cast<std::size_t>(i)];
    const auto& b = loaded.examples()[static_cast<std::size_t>(i)];
    EXPECT_EQ(a.deep_ids, b.deep_ids);
    EXPECT_EQ(a.wide_ids, b.wide_ids);
    EXPECT_EQ(a.click, b.click);
    EXPECT_EQ(a.conversion, b.conversion);
    EXPECT_EQ(a.oracle_conversion, b.oracle_conversion);
    EXPECT_NEAR(a.true_ctr, b.true_ctr, 1e-5f);
    EXPECT_EQ(a.user_index, b.user_index);
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  data::Dataset d;
  EXPECT_FALSE(data::ReadCsv("/nonexistent/path.csv", &d));
}

}  // namespace
}  // namespace dcmt

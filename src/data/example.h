#ifndef DCMT_DATA_EXAMPLE_H_
#define DCMT_DATA_EXAMPLE_H_

#include <cstdint>
#include <vector>

namespace dcmt {
namespace data {

/// One exposure record ("impression") in the entire space D.
///
/// Observable part (what a production log contains):
///   deep_ids / wide_ids — feature ids per field
///   click               — o ∈ {0,1}
///   conversion          — observed r; by construction 0 whenever click == 0
///                         (the paper's click space O is {click == 1})
///
/// Oracle part (exists only because the data is synthetic; used exclusively
/// by evaluation extensions and never shown to models):
///   oracle_conversion   — the potential outcome r̃ = "would convert if
///                         clicked"; in the non-click space N a record with
///                         oracle_conversion == 1 is exactly one of the
///                         paper's *fake negative* samples
///   true_ctr / true_cvr — the generator's ground-truth propensities
struct Example {
  std::vector<int> deep_ids;
  std::vector<int> wide_ids;
  std::uint8_t click = 0;
  std::uint8_t conversion = 0;
  std::uint8_t oracle_conversion = 0;
  float true_ctr = 0.0f;
  float true_cvr = 0.0f;
  /// User id (pre-hash), for grouping in the online simulator.
  std::int32_t user_index = 0;
  /// Item id (pre-hash).
  std::int32_t item_index = 0;
  /// Delayed-feedback attribution lag (DESIGN.md §17): a conversion on an
  /// exposure logged on day d attributes on day d + convert_lag_days. 0 =
  /// same-day attribution (the entire pre-§17 corpus). Between exposure and
  /// attribution the row is one of the paper's *fake negatives*: its
  /// observed `conversion` is 0 even though the user converts later.
  std::int32_t convert_lag_days = 0;
};

}  // namespace data
}  // namespace dcmt

#endif  // DCMT_DATA_EXAMPLE_H_

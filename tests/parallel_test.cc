// Determinism and correctness suite for the parallel runtime
// (core::ThreadPool + threaded tensor kernels + concurrent experiment
// repeats). The contract under test (DESIGN.md "Parallel runtime"):
//
//   1. With 1 thread every kernel executes the exact serial loops of the
//      original scalar engine (verified against hand-rolled references).
//   2. A fixed thread count is bit-reproducible (self-reproducibility).
//   3. Disjoint-write kernels (elementwise, matmul, softmax, embedding) are
//      bit-identical at *any* thread count; only chunked reductions (Sum)
//      may differ across thread counts, and then only in summation order.
//
// SetGrainCapForTesting(1) forces multi-chunk partitions on the small
// tensors used here, so the threaded code paths genuinely execute.

// This suite stress-tests the ThreadPool itself; std::atomic provides the
// independent race-free hit counters.
// dcmt-lint: allow(concurrency) — pool test needs its own atomics.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/thread_pool.h"
#include "data/profiles.h"
#include "eval/experiment.h"
#include "eval/trainer.h"
#include "core/dcmt.h"
#include "data/batcher.h"
#include "optim/adam.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace dcmt {
namespace {

using core::ParallelChunks;
using core::ParallelFor;
using core::SetGrainCapForTesting;
using core::ThreadPool;

/// RAII: configure (threads, grain cap) for a test, restore serial after.
class ScopedParallelConfig {
 public:
  ScopedParallelConfig(int threads, std::int64_t grain_cap) {
    ThreadPool::Global().SetNumThreads(threads);
    SetGrainCapForTesting(grain_cap);
  }
  ~ScopedParallelConfig() {
    SetGrainCapForTesting(0);
    ThreadPool::Global().SetNumThreads(1);
  }
};

TEST(ThreadPool, DefaultNumThreadsHonorsEnv) {
  setenv("DCMT_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(core::DefaultNumThreads(), 3);
  setenv("DCMT_THREADS", "not-a-number", 1);
  EXPECT_GE(core::DefaultNumThreads(), 1);  // falls back to hardware
  unsetenv("DCMT_THREADS");
  EXPECT_GE(core::DefaultNumThreads(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ScopedParallelConfig config(/*threads=*/4, /*grain_cap=*/1);
  constexpr int kRange = 1000;
  // dcmt-lint: allow(concurrency) — independent counters for the pool test.
  std::vector<std::atomic<int>> hits(kRange);
  for (auto& h : hits) h = 0;
  ParallelFor(0, kRange, /*grain=*/64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (int i = 0; i < kRange; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ChunkLayoutIsDeterministic) {
  ScopedParallelConfig config(4, 1);
  EXPECT_EQ(ParallelChunks(1000, 64), 4);
  EXPECT_EQ(ParallelChunks(1000, 64), 4);  // pure function, stable
  EXPECT_EQ(ParallelChunks(2, 1), 2);
  EXPECT_EQ(ParallelChunks(0, 1), 0);
  ThreadPool::Global().SetNumThreads(1);
  EXPECT_EQ(ParallelChunks(1000, 1), 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ScopedParallelConfig config(4, 1);
  ParallelFor(0, 4, 1, [&](std::int64_t, std::int64_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // A nested call must collapse to one inline chunk, not deadlock.
    EXPECT_EQ(ParallelChunks(1000, 1), 1);
    int calls = 0;
    ParallelFor(0, 100, 1, [&](std::int64_t lo, std::int64_t hi) {
      ++calls;
      EXPECT_EQ(lo, 0);
      EXPECT_EQ(hi, 100);
    });
    EXPECT_EQ(calls, 1);
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

// --- 1-thread path == the reference computation ---------------------------

TEST(ParallelKernels, SingleThreadMatMulMatchesSerialReference) {
  ThreadPool::Global().SetNumThreads(1);
  const int m = 7, k = 5, n = 6;
  Rng rng(11);
  Tensor a = Tensor::Randn(m, k, 1.0f, &rng);
  Tensor b = Tensor::Randn(k, n, 1.0f, &rng);
  Tensor out = ops::MatMul(a, b);
  // Double-precision reference. The SIMD GEMM may contract multiply-adds
  // into FMAs, so the comparison is tolerance-based (DESIGN.md §14); the
  // bit-level guarantee the engine still makes is thread-count invariance,
  // covered below.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        acc += static_cast<double>(a.data()[i * k + p]) *
               static_cast<double>(b.data()[p * n + j]);
      }
      EXPECT_NEAR(out.data()[i * n + j], acc, 1e-5) << "element " << i << "," << j;
    }
  }
}

TEST(ParallelKernels, SingleThreadSumMatchesSerialReference) {
  ThreadPool::Global().SetNumThreads(1);
  Rng rng(12);
  Tensor a = Tensor::Randn(31, 17, 1.0f, &rng);
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  EXPECT_EQ(ops::Sum(a).item(), static_cast<float>(acc));
}

// --- disjoint-write kernels: bit-identical across thread counts -----------

/// Runs fn at 1 thread and at 4 threads (grain cap 1) and asserts the
/// returned float vectors are bit-identical.
void ExpectThreadCountInvariant(
    const std::function<std::vector<float>()>& fn) {
  ThreadPool::Global().SetNumThreads(1);
  const std::vector<float> serial = fn();
  std::vector<float> threaded;
  {
    ScopedParallelConfig config(4, 1);
    threaded = fn();
  }
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "element " << i;
  }
}

TEST(ParallelKernels, MatMulForwardAndBackwardThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    Rng rng(21);
    Tensor a = Tensor::Randn(13, 9, 1.0f, &rng, /*requires_grad=*/true);
    Tensor b = Tensor::Randn(9, 11, 1.0f, &rng, /*requires_grad=*/true);
    Tensor loss = ops::Sum(ops::Square(ops::MatMul(a, b)));
    loss.Backward();
    std::vector<float> all;
    const Tensor out = ops::MatMul(a, b);
    all.insert(all.end(), out.data(), out.data() + out.size());
    all.insert(all.end(), a.grad(), a.grad() + a.size());
    all.insert(all.end(), b.grad(), b.grad() + b.size());
    return all;
  });
}

TEST(ParallelKernels, ElementwiseThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    Rng rng(22);
    Tensor a = Tensor::Randn(17, 7, 1.0f, &rng, /*requires_grad=*/true);
    Tensor b = Tensor::Randn(17, 7, 1.0f, &rng, /*requires_grad=*/true);
    Tensor row = Tensor::Randn(1, 7, 1.0f, &rng, /*requires_grad=*/true);
    Tensor col = Tensor::Randn(17, 1, 1.0f, &rng, /*requires_grad=*/true);
    Tensor y = ops::Mul(ops::Add(ops::Tanh(a), b), ops::Sigmoid(a));
    y = ops::Add(y, row);  // row broadcast: column-parallel backward
    y = ops::Mul(y, col);  // col broadcast: row-parallel backward
    Tensor loss = ops::Sum(y);
    loss.Backward();
    std::vector<float> all(y.data(), y.data() + y.size());
    all.insert(all.end(), a.grad(), a.grad() + a.size());
    all.insert(all.end(), b.grad(), b.grad() + b.size());
    all.insert(all.end(), row.grad(), row.grad() + row.size());
    all.insert(all.end(), col.grad(), col.grad() + col.size());
    return all;
  });
}

TEST(ParallelKernels, SoftmaxRowsThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    Rng rng(23);
    Tensor a = Tensor::Randn(19, 8, 2.0f, &rng, /*requires_grad=*/true);
    Tensor y = ops::SoftmaxRows(a);
    Tensor loss = ops::Sum(ops::Mul(y, y));
    loss.Backward();
    std::vector<float> all(y.data(), y.data() + y.size());
    all.insert(all.end(), a.grad(), a.grad() + a.size());
    return all;
  });
}

TEST(ParallelKernels, EmbeddingScatterWithDuplicateIdsThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    Rng rng(24);
    Tensor table = Tensor::Randn(11, 5, 1.0f, &rng, /*requires_grad=*/true);
    // Heavy duplication: the scatter-merge order is what is under test.
    const std::vector<int> ids = {3, 3, 3, 0, 10, 3, 7, 0, 10, 10, 3, 5};
    Tensor loss = ops::Sum(ops::Square(ops::EmbeddingLookup(table, ids)));
    loss.Backward();
    return std::vector<float>(table.grad(), table.grad() + table.size());
  });
}

TEST(ParallelKernels, BceLossThreadCountInvariant) {
  ExpectThreadCountInvariant([] {
    Rng rng(25);
    Tensor logits = Tensor::Randn(37, 3, 1.0f, &rng, /*requires_grad=*/true);
    Tensor labels = Tensor::Zeros(37, 3);
    for (int i = 0; i < 37 * 3; i += 2) labels.data()[i] = 1.0f;
    Tensor loss = ops::Sum(ops::BceLoss(ops::Sigmoid(logits), labels));
    loss.Backward();
    return std::vector<float>(logits.grad(), logits.grad() + logits.size());
  });
}

// --- chunked reductions: self-reproducible at a fixed thread count --------

TEST(ParallelKernels, SumSelfReproducibleAtFourThreads) {
  ScopedParallelConfig config(4, 1);
  Rng rng(26);
  Tensor a = Tensor::Randn(41, 13, 1.0f, &rng);
  const float first = ops::Sum(a).item();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ops::Sum(a).item(), first);
  // And the chunked order stays numerically honest vs the serial sum.
  ThreadPool::Global().SetNumThreads(1);
  EXPECT_NEAR(ops::Sum(a).item(), first, 1e-4f * std::fabs(first) + 1e-5f);
}

// --- gradcheck through the threaded kernel paths --------------------------

TEST(ParallelGradCheck, MatMul) {
  ScopedParallelConfig config(4, 1);
  Rng rng(31);
  Tensor a = Tensor::Randn(6, 4, 0.5f, &rng, /*requires_grad=*/true);
  Tensor b = Tensor::Randn(4, 5, 0.5f, &rng, /*requires_grad=*/true);
  auto loss = [&]() { return ops::Sum(ops::Square(ops::MatMul(a, b))); };
  const GradCheckResult r = CheckGradients(loss, {a, b});
  EXPECT_TRUE(r.ok) << r.worst;
}

TEST(ParallelGradCheck, SoftmaxRows) {
  ScopedParallelConfig config(4, 1);
  Rng rng(32);
  Tensor a = Tensor::Randn(5, 6, 1.0f, &rng, /*requires_grad=*/true);
  auto loss = [&]() {
    Tensor y = ops::SoftmaxRows(a);
    return ops::Sum(ops::Mul(y, y));
  };
  const GradCheckResult r = CheckGradients(loss, {a});
  EXPECT_TRUE(r.ok) << r.worst;
}

TEST(ParallelGradCheck, EmbeddingLookupWithDuplicateIds) {
  ScopedParallelConfig config(4, 1);
  Rng rng(33);
  Tensor table = Tensor::Randn(7, 3, 0.5f, &rng, /*requires_grad=*/true);
  const std::vector<int> ids = {1, 4, 1, 6, 1, 0, 4};
  auto loss = [&]() {
    return ops::Sum(ops::Square(ops::EmbeddingLookup(table, ids)));
  };
  const GradCheckResult r = CheckGradients(loss, {table});
  EXPECT_TRUE(r.ok) << r.worst;
}

TEST(ParallelGradCheck, BceLossDifferentiableTarget) {
  ScopedParallelConfig config(4, 1);
  Rng rng(34);
  // Both pred and target require grad — the satellite fix under test.
  Tensor plogit = Tensor::Randn(6, 2, 0.5f, &rng, /*requires_grad=*/true);
  Tensor tlogit = Tensor::Randn(6, 2, 0.5f, &rng, /*requires_grad=*/true);
  auto loss = [&]() {
    return ops::Sum(
        ops::BceLoss(ops::Sigmoid(plogit), ops::Sigmoid(tlogit), 1e-4f));
  };
  const GradCheckResult r = CheckGradients(loss, {plogit, tlogit});
  EXPECT_TRUE(r.ok) << r.worst;
}

TEST(BceLossContract, TargetOnlyGradFlows) {
  ThreadPool::Global().SetNumThreads(1);
  Tensor pred = Tensor::FromData(2, 1, {0.3f, 0.8f});  // no grad
  Tensor target = Tensor::FromData(2, 1, {0.4f, 0.6f}, /*requires_grad=*/true);
  Tensor loss = ops::Sum(ops::BceLoss(pred, target));
  ASSERT_TRUE(loss.requires_grad());
  loss.Backward();
  // dL/dy = log((1-p)/p).
  EXPECT_NEAR(target.grad()[0], std::log(0.7f / 0.3f), 1e-5f);
  EXPECT_NEAR(target.grad()[1], std::log(0.2f / 0.8f), 1e-5f);
  EXPECT_FALSE(pred.has_grad());
}

TEST(BceLossContractDeathTest, NonPositiveEpsIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Tensor pred = Tensor::FromData(1, 1, {0.5f}, /*requires_grad=*/true);
  Tensor target = Tensor::FromData(1, 1, {1.0f});
  EXPECT_DEATH(ops::BceLoss(pred, target, 0.0f), "eps must be positive");
}

// --- full DCMT training: reproducibility across and within thread counts --

std::vector<float> TrainTinyDcmtAndDumpParams() {
  data::DatasetProfile profile = data::AeEsProfile();
  profile.train_exposures = 1500;
  profile.test_exposures = 500;
  data::SyntheticLogGenerator generator(profile);
  const data::Dataset train = generator.GenerateTrain();
  models::ModelConfig mc;
  core::Dcmt model(train.schema(), mc);
  eval::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 256;
  eval::Train(&model, train, tc);
  std::vector<float> params;
  for (const Tensor& p : model.parameters()) {
    params.insert(params.end(), p.data(), p.data() + p.size());
  }
  return params;
}

TEST(ParallelTraining, FourThreadTrainEpochSelfReproducible) {
  std::vector<float> first, second;
  {
    ScopedParallelConfig config(4, 0);  // production grains, real pool
    first = TrainTinyDcmtAndDumpParams();
    second = TrainTinyDcmtAndDumpParams();
  }
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "param element " << i;
  }
}

TEST(ParallelTraining, SingleThreadTrainEpochSelfReproducible) {
  ThreadPool::Global().SetNumThreads(1);
  const std::vector<float> first = TrainTinyDcmtAndDumpParams();
  const std::vector<float> second = TrainTinyDcmtAndDumpParams();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "param element " << i;
  }
}

// --- concurrent experiment repeats ----------------------------------------

TEST(ParallelExperiment, ConcurrentRepeatsMatchSerialRepeats) {
  data::DatasetProfile profile = data::AeEsProfile();
  profile.train_exposures = 1200;
  profile.test_exposures = 600;
  data::SyntheticLogGenerator generator(profile);
  const data::Dataset train = generator.GenerateTrain();
  const data::Dataset test = generator.GenerateTest();
  models::ModelConfig mc;
  eval::TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 256;

  ThreadPool::Global().SetNumThreads(1);
  const eval::ExperimentResult serial =
      eval::RunOfflineExperiment("dcmt", train, test, mc, tc, /*repeats=*/3);
  eval::ExperimentResult threaded;
  {
    ScopedParallelConfig config(4, 0);
    threaded =
        eval::RunOfflineExperiment("dcmt", train, test, mc, tc, /*repeats=*/3);
  }
  // Repeat workers run kernels inline (nested guard), so per-run arithmetic
  // is identical to the serial path — results must agree exactly.
  ASSERT_EQ(serial.runs.size(), threaded.runs.size());
  EXPECT_EQ(serial.cvr_auc, threaded.cvr_auc);
  EXPECT_EQ(serial.ctcvr_auc, threaded.ctcvr_auc);
  EXPECT_EQ(serial.ctr_auc, threaded.ctr_auc);
  EXPECT_EQ(serial.cvr_auc_oracle, threaded.cvr_auc_oracle);
  EXPECT_EQ(serial.mean_cvr_pred, threaded.mean_cvr_pred);
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].cvr_auc_clicked, threaded.runs[i].cvr_auc_clicked);
  }
}

}  // namespace
}  // namespace dcmt

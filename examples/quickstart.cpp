// Quickstart: generate a synthetic exposure log, train DCMT, and print the
// paper's offline metrics. Mirrors the README's five-minute tour.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/dcmt.h"
#include "data/profiles.h"
#include "eval/evaluator.h"
#include "eval/trainer.h"

int main() {
  using namespace dcmt;

  // 1. A scaled AE-ES-style dataset with known ground truth.
  data::DatasetProfile profile = data::AeEsProfile();
  profile.train_exposures = 30000;
  profile.test_exposures = 15000;
  data::SyntheticLogGenerator generator(profile);
  const data::Dataset train = generator.GenerateTrain();
  const data::Dataset test = generator.GenerateTest();

  const data::DatasetStats stats = train.Stats();
  std::printf("dataset %s: %lld exposures, %lld clicks (%.2f%%), %lld conversions\n",
              train.name().c_str(), static_cast<long long>(stats.exposures),
              static_cast<long long>(stats.clicks), 100.0 * stats.click_rate,
              static_cast<long long>(stats.conversions));

  // 2. The completed DCMT model (twin tower + counterfactual mechanism).
  models::ModelConfig model_config;
  core::Dcmt model(train.schema(), model_config, core::Dcmt::Variant::kFull);
  std::printf("model %s: %lld trainable parameters\n", model.name().c_str(),
              static_cast<long long>(model.ParameterCount()));

  // 3. Train with the paper's optimizer settings.
  eval::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.verbose = true;
  const eval::TrainHistory history = eval::Train(&model, train, train_config);
  std::printf("trained %lld steps in %.1fs\n",
              static_cast<long long>(history.steps), history.seconds);

  // 4. Evaluate with the paper's protocol (plus the simulation-only oracle).
  const eval::EvalResult result = eval::Evaluate(&model, test);
  std::printf("CVR AUC (clicked)    %.4f\n", result.cvr_auc_clicked);
  std::printf("CTCVR AUC (entire D) %.4f\n", result.ctcvr_auc);
  std::printf("CTR AUC              %.4f\n", result.ctr_auc);
  std::printf("CVR AUC (oracle, D)  %.4f\n", result.cvr_auc_oracle);
  std::printf("mean pCVR over D     %.4f\n", result.mean_cvr_pred);
  return 0;
}

// Example: define a custom dataset profile (your own marketplace), export it
// to CSV, reload it, and train DCMT on the loaded copy — the path a user
// takes to plug their own exposure logs into this library.
//
//   ./build/examples/custom_dataset [csv_path]

#include <cstdio>
#include <string>

#include "core/dcmt.h"
#include "data/csv.h"
#include "data/generator.h"
#include "eval/evaluator.h"
#include "eval/trainer.h"

int main(int argc, char** argv) {
  using namespace dcmt;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/dcmt_custom_dataset.csv";

  // 1. A custom profile: a niche marketplace with strong selection bias
  //    (high α-coupling) and no wide features.
  data::DatasetProfile profile;
  profile.name = "my-marketplace";
  profile.num_users = 800;
  profile.num_items = 1200;
  profile.train_exposures = 20000;
  profile.test_exposures = 8000;
  profile.target_click_rate = 0.07;
  profile.target_cvr_given_click = 0.22;
  profile.click_conv_coupling = 2.0f;  // strong NMAR selection bias
  profile.with_wide_features = false;
  profile.seed = 4242;

  data::SyntheticLogGenerator generator(profile);
  const data::Dataset train = generator.GenerateTrain();
  const data::Dataset test = generator.GenerateTest();

  // 2. Persist to CSV and reload — schema travels in the header, so the
  //    reloaded dataset is self-describing (this is where you would load a
  //    CSV exported from your own logs instead).
  if (!data::WriteCsv(train, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  data::Dataset reloaded;
  if (!data::ReadCsv(path, &reloaded)) {
    std::fprintf(stderr, "cannot read back %s\n", path.c_str());
    return 1;
  }
  std::printf("round-tripped %lld exposures through %s\n",
              static_cast<long long>(reloaded.size()), path.c_str());

  // 3. Train DCMT on the reloaded data.
  models::ModelConfig model_config;
  model_config.embedding_dim = 8;
  core::Dcmt model(reloaded.schema(), model_config);
  eval::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.learning_rate = 0.01f;
  eval::Train(&model, reloaded, train_config);

  const eval::EvalResult result = eval::Evaluate(&model, test);
  std::printf("CVR AUC (clicked) %.4f | CTCVR AUC %.4f | CTR AUC %.4f\n",
              result.cvr_auc_clicked, result.ctcvr_auc, result.ctr_auc);
  std::printf("mean pCVR over D %.4f (posterior D %.4f, posterior O %.4f)\n",
              result.mean_cvr_pred, test.Stats().ctcvr_rate,
              test.Stats().cvr_given_click);
  return 0;
}

#include "eval/online_ab.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "core/obs.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"

namespace dcmt {
namespace eval {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic U(0,1) for an event key: the same (day, pv, item, position)
/// event resolves identically in every bucket, which pairs the buckets and
/// reduces A/B variance exactly like serving the same user twice would.
float HashUniform(std::uint64_t key) {
  return static_cast<float>(Mix(key) >> 40) * (1.0f / 16777216.0f);
}

/// Deterministic approximate N(0,1) (Irwin–Hall over 4 uniforms).
float HashNormal(std::uint64_t key) {
  float acc = 0.0f;
  for (std::uint64_t i = 0; i < 4; ++i) {
    acc += HashUniform(key ^ Mix(i + 0x5deece66dULL));
  }
  return (acc - 2.0f) * 1.7320508f;
}

/// Per-item preference random walk at day `day`: the cumulative sum of one
/// fresh deterministic N(0,1) step per elapsed day. Day 0 is the undrifted
/// world the buckets' models were (pre)trained on.
float DriftWalk(std::uint64_t seed, int day, int item) {
  const std::uint64_t salt = Mix(seed ^ 0x64726966742d7377ULL) ^
                             Mix(static_cast<std::uint64_t>(item) + 104729);
  float walk = 0.0f;
  for (int t = 1; t <= day; ++t) {
    walk += HashNormal(salt ^ Mix(static_cast<std::uint64_t>(t) * 2654435761ULL));
  }
  return walk;
}

/// Shifts a conversion propensity by `shift` in log-odds.
float ShiftLogOdds(float p, float shift) {
  const float clamped = std::clamp(p, 1e-6f, 1.0f - 1e-6f);
  const float logit = std::log(clamped / (1.0f - clamped)) + shift;
  return 1.0f / (1.0f + std::exp(-logit));
}

}  // namespace

DayTraffic BuildDayTraffic(const data::SyntheticLogGenerator& generator,
                           const AbConfig& config, int day) {
  const auto& profile = generator.profile();
  // The day's traffic, identical for every bucket/policy: the stream depends
  // only on (seed, day), never on any model's choices.
  Rng traffic(Mix(config.seed) ^ Mix(static_cast<std::uint64_t>(day) + 17));
  DayTraffic out;
  out.stream.resize(static_cast<std::size_t>(config.page_views_per_day));
  for (auto& pv : out.stream) {
    pv.user = static_cast<int>(traffic.NextBounded(profile.num_users));
    pv.candidates.resize(static_cast<std::size_t>(config.candidates_per_pv));
    for (auto& item : pv.candidates) {
      const float skew = traffic.Uniform();
      item = std::min(profile.num_items - 1,
                      static_cast<int>(skew * skew * profile.num_items));
    }
  }
  return out;
}

ScoringPlan BuildScoringPlan(const data::SyntheticLogGenerator& generator,
                             const DayTraffic& traffic, std::size_t pv_begin,
                             std::size_t pv_end) {
  // The skew-sampled candidate lists repeat (user, item) pairs heavily, and
  // every duplicate used to re-run its embedding lookups and tower forward.
  // Each distinct pair is scored once and broadcast back to its candidate
  // slots — same scores (forward rows are independent), strictly less work.
  ScoringPlan plan;
  std::unordered_map<std::uint64_t, std::size_t> row_index;
  for (std::size_t p = pv_begin; p < pv_end; ++p) {
    const DayTraffic::PageView& pv = traffic.stream[p];
    for (int item : pv.candidates) {
      const std::uint64_t key = static_cast<std::uint64_t>(pv.user) << 32 |
                                static_cast<std::uint32_t>(item);
      auto [it, inserted] = row_index.emplace(key, plan.unique_rows.size());
      if (inserted) {
        plan.unique_rows.push_back(
            generator.MakeExample(pv.user, item, /*position=*/0));
      }
      plan.slot_to_row.push_back(it->second);
    }
  }
  return plan;
}

void RollDayOutcomes(const data::SyntheticLogGenerator& generator,
                     const AbConfig& config, int day, const DayTraffic& traffic,
                     std::size_t pv_begin, std::size_t pv_end,
                     const std::vector<float>& slot_pctcvr,
                     const std::vector<float>& slot_pcvr, DayTally* tally,
                     std::vector<ExposureOutcome>* log) {
  // dcmt-lint: allow(float-eq) — exact "drift disabled" sentinel.
  const bool drifted = config.conversion_drift_scale != 0.0f && day > 0;
  for (std::size_t p = pv_begin; p < pv_end; ++p) {
    const DayTraffic::PageView& pv = traffic.stream[p];
    const std::size_t base =
        (p - pv_begin) * static_cast<std::size_t>(config.candidates_per_pv);
    std::vector<int> order(pv.candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int c) {
      return slot_pctcvr[base + static_cast<std::size_t>(a)] >
             slot_pctcvr[base + static_cast<std::size_t>(c)];
    });
    const int exposed = std::min<int>(
        config.exposed_per_pv, static_cast<int>(pv.candidates.size()));
    for (int slot = 0; slot < exposed; ++slot) {
      const int item = pv.candidates[static_cast<std::size_t>(order[slot])];
      // The event key depends on (day, pv, user, item, slot) only — the
      // same exposure resolves identically under every policy (stateless
      // keyed draws), the variance-pairing trick of the A/B platform.
      const std::uint64_t event_key =
          Mix(static_cast<std::uint64_t>(day) * 1000003ULL + p) ^
          Mix(static_cast<std::uint64_t>(pv.user) << 32 |
              static_cast<std::uint64_t>(item)) ^
          Mix(static_cast<std::uint64_t>(slot) + 31337);
      const float p_click = generator.TrueClickProbability(pv.user, item, slot);
      const bool clicked = HashUniform(event_key) < p_click;
      float p_conv = generator.TrueConversionProbability(pv.user, item, slot);
      if (drifted) {
        p_conv = ShiftLogOdds(p_conv, config.conversion_drift_scale *
                                          DriftWalk(config.seed, day, item));
      }
      // The potential outcome r̃ is drawn for every exposure; the observed
      // conversion is r = o·r̃. Clicked exposures draw the exact uniform the
      // pre-§17 simulator drew, so lag=0 metrics stay bit-identical.
      const bool oracle = HashUniform(event_key ^ 0xc0ffeeULL) < p_conv;
      const bool converted = clicked && oracle;
      int lag_days = 0;
      if (converted && config.lag.max_lag_days > 0) {
        lag_days = data::DrawConversionLagDays(
            config.lag, event_key ^ 0x6c61672d726f6c6cULL);
      }
      const bool matured = converted && day + lag_days < config.days;
      ++tally->exposures;
      tally->clicks += clicked ? 1 : 0;
      tally->matured_conversions += matured ? 1 : 0;
      tally->pending_conversions += (converted && !matured) ? 1 : 0;
      tally->eventual_conversions += converted ? 1 : 0;
      if (matured && slot < config.first_screen) {
        ++tally->first_screen_conversions;
      }
      if (log != nullptr) {
        ExposureOutcome& out = log->emplace_back();
        out.pv = p;
        out.item = item;
        out.slot = slot;
        out.clicked = clicked;
        out.oracle = oracle;
        out.converted = converted;
        out.lag_days = lag_days;
        out.p_click = p_click;
        out.p_conv = p_conv;
        out.pctcvr = slot_pctcvr[base + static_cast<std::size_t>(order[slot])];
        out.pcvr = slot_pcvr[base + static_cast<std::size_t>(order[slot])];
      }
    }
  }
}

DayMetrics FinalizeDayMetrics(const DayTally& tally, std::int64_t page_views) {
  DayMetrics metrics;
  metrics.page_views = page_views;
  metrics.clicks = tally.clicks;
  metrics.conversions = tally.matured_conversions;
  metrics.pending_conversions = tally.pending_conversions;
  if (page_views > 0) {
    metrics.pv_ctr = static_cast<double>(tally.clicks) / page_views;
    metrics.pv_cvr = static_cast<double>(tally.matured_conversions) / page_views;
    metrics.top5_pv_cvr =
        static_cast<double>(tally.first_screen_conversions) / page_views;
  }
  return metrics;
}

OnlineAbSimulator::OnlineAbSimulator(data::SyntheticLogGenerator* generator,
                                     AbConfig config)
    : generator_(generator), config_(config) {}

std::vector<BucketResult> OnlineAbSimulator::Run(
    const std::vector<models::MultiTaskModel*>& bucket_models,
    const std::vector<std::string>& bucket_names) {
  std::vector<BucketResult> results(bucket_models.size());
  for (std::size_t b = 0; b < bucket_models.size(); ++b) {
    results[b].model = bucket_names[b];
  }

  // Serving-side telemetry: scoring latency is tracked per bucket (the
  // labeled sums are what an A/B dashboard would alert on), event volumes
  // globally.
  obs::Registry& obs_registry = obs::Registry::Global();
  obs::Counter obs_page_views = obs_registry.counter("dcmt_ab_page_views_total");
  obs::Counter obs_scored =
      obs_registry.counter("dcmt_ab_candidates_scored_total");
  obs::Counter obs_exposures = obs_registry.counter("dcmt_ab_exposures_total");
  obs::Counter obs_clicks = obs_registry.counter("dcmt_ab_clicks_total");
  obs::Counter obs_conversions =
      obs_registry.counter("dcmt_ab_conversions_total");
  std::vector<obs::Sum> obs_score_seconds;
  obs_score_seconds.reserve(bucket_names.size());
  for (const std::string& name : bucket_names) {
    obs_score_seconds.push_back(obs_registry.sum(
        "dcmt_ab_score_seconds_total{bucket=\"" + name + "\"}"));
  }

  std::int64_t posterior_exposures = 0, posterior_clicks = 0,
               posterior_convs = 0;

  // Serving stack, one per bucket, reused across days: each bucket's model
  // behind a frozen view and a micro-batching engine. Scores are identical
  // to a taped Forward over the raw candidate list (forward kernels are
  // row-independent; see serve::FrozenModel), but the serving path is
  // tape-free and — with the dedupe in BuildScoringPlan — embeds each
  // distinct (user, item) pair once instead of once per duplicate slot.
  std::vector<serve::FrozenModel> frozen;
  frozen.reserve(bucket_models.size());  // engines keep pointers into this
  std::vector<std::unique_ptr<serve::Engine>> engines;
  serve::EngineConfig engine_config;
  engine_config.max_batch = 4096;
  engine_config.queue_capacity = 8192;
  for (models::MultiTaskModel* model : bucket_models) {
    frozen.push_back(serve::FrozenModel::View(model, generator_->Schema()));
    engines.push_back(
        std::make_unique<serve::Engine>(&frozen.back(), engine_config));
  }

  for (int day = 0; day < config_.days; ++day) {
    const DayTraffic traffic = BuildDayTraffic(*generator_, config_, day);
    const ScoringPlan plan =
        BuildScoringPlan(*generator_, traffic, 0, traffic.stream.size());
    const std::int64_t day_candidates =
        static_cast<std::int64_t>(plan.slot_to_row.size());

    for (std::size_t b = 0; b < bucket_models.size(); ++b) {
      // Score the unique rows through the bucket's serving engine, then
      // expand to per-candidate-slot columns.
      std::vector<float> score_ctcvr;
      std::vector<float> score_cvr;
      score_ctcvr.reserve(plan.slot_to_row.size());
      score_cvr.reserve(plan.slot_to_row.size());
      {
        obs::TraceSpan score_span("ab/score", "candidates", day_candidates);
        const std::int64_t score_t0 = obs::NowNanos();
        const std::vector<serve::Score> unique_scores =
            engines[b]->ScoreAll(plan.unique_rows);
        for (const std::size_t row : plan.slot_to_row) {
          score_ctcvr.push_back(unique_scores[row].pctcvr);
          score_cvr.push_back(unique_scores[row].pcvr);
        }
        obs_score_seconds[b].Add(
            static_cast<double>(obs::NowNanos() - score_t0) * 1e-9);
        obs_scored.Inc(day_candidates);
      }
      if (day == 0) {
        results[b].day1_cvr_predictions = score_cvr;
      }

      // Rank within each page view, expose top-K, roll user behaviour.
      DayTally tally;
      RollDayOutcomes(*generator_, config_, day, traffic, 0,
                      traffic.stream.size(), score_ctcvr, score_cvr, &tally,
                      /*log=*/nullptr);
      if (day == 0) {
        posterior_exposures += tally.exposures;
        posterior_clicks += tally.clicks;
        posterior_convs += tally.eventual_conversions;
      }
      const DayMetrics metrics =
          FinalizeDayMetrics(tally, config_.page_views_per_day);
      obs_page_views.Inc(metrics.page_views);
      obs_exposures.Inc(tally.exposures);
      obs_clicks.Inc(metrics.clicks);
      obs_conversions.Inc(metrics.conversions);
      results[b].days.push_back(metrics);
    }
  }

  // Overall = traffic-weighted mean over days.
  for (BucketResult& r : results) {
    DayMetrics total;
    double top5_sum = 0.0;
    for (const DayMetrics& d : r.days) {
      total.page_views += d.page_views;
      total.clicks += d.clicks;
      total.conversions += d.conversions;
      total.pending_conversions += d.pending_conversions;
      top5_sum += d.top5_pv_cvr * static_cast<double>(d.page_views);
    }
    if (total.page_views > 0) {
      total.pv_ctr = static_cast<double>(total.clicks) / total.page_views;
      total.pv_cvr = static_cast<double>(total.conversions) / total.page_views;
      total.top5_pv_cvr = top5_sum / static_cast<double>(total.page_views);
    }
    r.overall = total;
  }

  posterior_.over_d =
      posterior_exposures > 0
          ? static_cast<double>(posterior_convs) / posterior_exposures
          : 0.0;
  posterior_.over_o = posterior_clicks > 0
                          ? static_cast<double>(posterior_convs) / posterior_clicks
                          : 0.0;
  posterior_.over_n = 0.0;
  return results;
}

}  // namespace eval
}  // namespace dcmt

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/thread_pool.h"
#include "tensor/kernels.h"

namespace dcmt {
namespace ops {
namespace {

// Every backward closure below captures the *output* node as a raw
// Tensor::Impl* — the closure is owned by that node, so the pointer is valid
// exactly as long as the closure can run. Capturing the output as a Tensor
// handle would create a shared_ptr cycle and leak the entire upstream graph
// (see Tensor::SetBackwardFn).
//
// Threading: kernels partition work with core::ParallelFor; the vectorized
// inner loops live in tensor/kernels.cc. Partitions are static and write
// disjoint output ranges; wherever a gradient element accumulates
// contributions from several input elements, the partition is chosen so that
// each accumulator sees its contributions in the same order at any chunk
// count (see DESIGN.md §9/§14). The kernels are partition-invariant by
// construction — splitting a range at any boundary reproduces the unsplit
// results bit for bit — so thread count never changes values outside the
// chunked reductions (Sum and the fused reductions built on its scheme).

using core::ParallelFor;
using core::ParallelForChunks;

/// Minimum elementwise operations per chunk before a kernel fans out. With
/// the SIMD kernels an element costs ~1ns, so anything below ~100k elements
/// loses more to pool dispatch than it gains from parallelism (the 0.88x
/// regression BENCH_engine.json caught at 4 threads on a small box).
constexpr std::int64_t kElementwiseGrain = 131072;
/// Minimum multiply-adds per chunk for matmul-shaped kernels. 2^23 madds is
/// ~0.1ms of single-thread GEMM work — the break-even point where a second
/// thread starts paying for its wake-up; the tower-shaped matmuls
/// (batch ~<=512, widths ~<=128) stay single-chunk, and only genuinely large
/// GEMMs fan out.
constexpr std::int64_t kMatMulGrain = 8388608;

/// Row grain so each chunk holds at least `work` scalar ops at `per_row`
/// ops per row.
inline std::int64_t RowGrain(std::int64_t work, std::int64_t per_row) {
  return std::max<std::int64_t>(1, work / std::max<std::int64_t>(1, per_row));
}

[[noreturn]] void Fatal(const char* msg) {
  std::fprintf(stderr, "dcmt ops fatal: %s\n", msg);
  std::abort();
}

/// How the second operand of a binary op maps onto the first.
enum class Broadcast { kSame, kRow, kCol, kScalar };

Broadcast BroadcastKind(const Tensor& a, const Tensor& b) {
  if (b.rows() == a.rows() && b.cols() == a.cols()) return Broadcast::kSame;
  if (b.rows() == 1 && b.cols() == 1) return Broadcast::kScalar;
  if (b.rows() == 1 && b.cols() == a.cols()) return Broadcast::kRow;
  if (b.rows() == a.rows() && b.cols() == 1) return Broadcast::kCol;
  Fatal("incompatible shapes for broadcast binary op");
}

/// Index of b's element corresponding to a's element (r, c).
inline std::size_t BIndex(Broadcast k, int r, int c, int bcols) {
  switch (k) {
    case Broadcast::kSame:
      return static_cast<std::size_t>(r) * bcols + c;
    case Broadcast::kRow:
      return static_cast<std::size_t>(c);
    case Broadcast::kCol:
      return static_cast<std::size_t>(r);
    case Broadcast::kScalar:
      return 0;
  }
  return 0;
}

bool AnyRequiresGrad(const Tensor& a, const Tensor& b) {
  return a.requires_grad() || b.requires_grad();
}

/// Builds a binary elementwise node for the plain-arithmetic family (add,
/// mul, ...). `fwd(av, bv)` computes the value; `dfda` / `dfdb` compute
/// local partials given (av, bv, out). The transcendental family bypasses
/// this template for the vectorized kernels in tensor/kernels.cc.
template <typename Fwd, typename DfDa, typename DfDb>
Tensor BinaryOp(const char* op, const Tensor& a, const Tensor& b, Fwd fwd,
                DfDa dfda, DfDb dfdb) {
  const Broadcast kind = BroadcastKind(a, b);
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeNode(m, n, {a, b}, AnyRequiresGrad(a, b));
  out.SetOp(op);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  const int bcols = b.cols();
  ParallelFor(0, m, RowGrain(kElementwiseGrain, n),
              [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                  for (int c = 0; c < n; ++c) {
                    const std::size_t i = static_cast<std::size_t>(r) * n + c;
                    od[i] = fwd(ad[i], bd[BIndex(kind, static_cast<int>(r), c, bcols)]);
                  }
                }
              });
  if (out.requires_grad()) {
    Tensor a_cap = a, b_cap = b;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, b_cap, self, kind, m, n, dfda, dfdb]() mutable {
      const float* og = self->EnsureGrad();
      const float* out_d = self->data.data();
      const float* a_d = a_cap.data();
      const float* b_d = b_cap.data();
      float* ag = a_cap.requires_grad() ? a_cap.impl()->EnsureGrad() : nullptr;
      float* bg = b_cap.requires_grad() ? b_cap.impl()->EnsureGrad() : nullptr;
      const int b_cols = b_cap.cols();
      auto element = [&](int r, int c) {
        const std::size_t i = static_cast<std::size_t>(r) * n + c;
        const std::size_t j = BIndex(kind, r, c, b_cols);
        const float g = og[i];
        if (ag != nullptr) ag[i] += g * dfda(a_d[i], b_d[j], out_d[i]);
        if (bg != nullptr) bg[j] += g * dfdb(a_d[i], b_d[j], out_d[i]);
      };
      if (bg == nullptr || kind == Broadcast::kSame || kind == Broadcast::kCol) {
        // b's gradient (if any) is per-element or per-row local: partition
        // rows; each accumulator stays within one chunk, in serial order.
        ParallelFor(0, m, RowGrain(kElementwiseGrain, n),
                    [&](std::int64_t r0, std::int64_t r1) {
                      for (std::int64_t r = r0; r < r1; ++r) {
                        for (int c = 0; c < n; ++c) element(static_cast<int>(r), c);
                      }
                    });
      } else if (kind == Broadcast::kRow) {
        // bg[c] sums over rows: partition *columns* so each bg element is
        // owned by one chunk and accumulates in ascending-row (serial) order.
        ParallelFor(0, n, RowGrain(kElementwiseGrain, m),
                    [&](std::int64_t c0, std::int64_t c1) {
                      for (int r = 0; r < m; ++r) {
                        for (std::int64_t c = c0; c < c1; ++c) {
                          element(r, static_cast<int>(c));
                        }
                      }
                    });
      } else {
        // Scalar broadcast with a differentiable b: bg[0] accumulates every
        // element, so keep the exact serial order.
        for (int r = 0; r < m; ++r) {
          for (int c = 0; c < n; ++c) element(r, c);
        }
      }
    });
  }
  return out;
}

/// Builds a unary elementwise node; `dfdx(x, y)` is the local derivative.
/// Like BinaryOp, this is the plain-arithmetic path only.
template <typename Fwd, typename DfDx>
Tensor UnaryOp(const char* op, const Tensor& a, Fwd fwd, DfDx dfdx) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeNode(m, n, {a}, a.requires_grad());
  out.SetOp(op);
  const float* ad = a.data();
  float* od = out.data();
  const std::int64_t total = a.size();
  ParallelFor(0, total, kElementwiseGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) od[i] = fwd(ad[i]);
  });
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, total, dfdx]() mutable {
      const float* og = self->EnsureGrad();
      const float* out_d = self->data.data();
      const float* a_d = a_cap.data();
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) {
                      ag[i] += og[i] * dfdx(a_d[i], out_d[i]);
                    }
                  });
    });
  }
  return out;
}

using MapFn = void (*)(const float*, float*, std::int64_t, std::int64_t);
using MapGradFn = void (*)(const float*, const float*, float*, std::int64_t,
                           std::int64_t);

/// Builds a unary node around a vectorized kernel pair from
/// tensor/kernels.cc. `grad_from_output` selects whether the grad kernel's
/// first operand is the op's output (sigmoid/tanh/exp) or its input
/// (relu/softplus).
Tensor UnaryKernelOp(const char* op, const Tensor& a, MapFn fwd, MapGradFn bwd,
                     bool grad_from_output) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeNode(m, n, {a}, a.requires_grad());
  out.SetOp(op);
  const float* ad = a.data();
  float* od = out.data();
  const std::int64_t total = a.size();
  ParallelFor(0, total, kElementwiseGrain,
              [&](std::int64_t i0, std::int64_t i1) { fwd(ad, od, i0, i1); });
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, total, bwd, grad_from_output]() mutable {
      const float* og = self->EnsureGrad();
      const float* src = grad_from_output ? self->data.data() : a_cap.data();
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    bwd(src, og, ag, i0, i1);
                  });
    });
  }
  return out;
}

/// Packs B into zero-padded column panels for the GEMM micro-kernel, reusing
/// a per-thread scratch buffer (no allocation in the serving steady state).
/// The returned pointer stays valid through the caller's ParallelFor: worker
/// threads only read it, and MatMul never nests inside another MatMul.
const float* PackB(const float* bd, int k, int n) {
  thread_local std::vector<float> scratch;
  const std::int64_t need = kernels::GemmPackedSize(k, n);
  if (static_cast<std::int64_t>(scratch.size()) < need) {
    scratch.resize(static_cast<std::size_t>(need));
  }
  kernels::GemmPackB(bd, k, n, scratch.data());
  return scratch.data();
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) Fatal("MatMul inner dimensions mismatch");
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = Tensor::MakeNode(m, n, {a, b}, AnyRequiresGrad(a, b));
  out.SetOp("matmul");
  const float* ad = a.data();
  float* od = out.data();
  // Packed-panel SIMD GEMM (DESIGN.md §14): B is repacked into 16-column
  // zero-padded panels once, then row chunks run the register-tiled
  // micro-kernel. Output values are invariant to the row partition, so any
  // thread count produces identical bits.
  const float* packed = PackB(b.data(), k, n);
  ParallelFor(0, m, RowGrain(kMatMulGrain, static_cast<std::int64_t>(k) * n),
              [&](std::int64_t i0, std::int64_t i1) {
                kernels::GemmRowsPacked(ad, packed, od, k, n, i0, i1);
              });
  if (out.requires_grad()) {
    Tensor a_cap = a, b_cap = b;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, b_cap, self, m, k, n]() mutable {
      const float* og = self->EnsureGrad();
      // dL/dA = dL/dOut * B^T  -> [m x k]. B's rows are contiguous, so the
      // vectorized dot products already run over packed (transposed-B)
      // memory; chunks own disjoint slabs of A's gradient rows.
      if (a_cap.requires_grad()) {
        float* ag = a_cap.impl()->EnsureGrad();
        const float* b_d = b_cap.data();
        ParallelFor(
            0, m, RowGrain(kMatMulGrain, static_cast<std::int64_t>(k) * n),
            [&](std::int64_t i0, std::int64_t i1) {
              kernels::GemmGradARows(og, b_d, ag, k, n, i0, i1);
            });
      }
      // dL/dB = A^T * dL/dOut  -> [k x n]. Parallelized over B's gradient
      // rows (the k dimension): each chunk owns bg rows [p0, p1) and scans
      // all m samples, so every bg element accumulates its contributions in
      // ascending-i order — the same order as the serial i-outer loop.
      if (b_cap.requires_grad()) {
        float* bg = b_cap.impl()->EnsureGrad();
        const float* a_d = a_cap.data();
        ParallelFor(
            0, k, RowGrain(kMatMulGrain, static_cast<std::int64_t>(m) * n),
            [&](std::int64_t p0, std::int64_t p1) {
              kernels::GemmGradBRows(a_d, og, bg, m, k, n, p0, p1);
            });
      }
    });
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float, float, float) { return 1.0f; },
      [](float, float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float, float, float) { return 1.0f; },
      [](float, float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y, float) { return y; },
      [](float x, float, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "div", a, b, [](float x, float y) { return x / y; },
      [](float, float y, float) { return 1.0f / y; },
      [](float x, float y, float) { return -x / (y * y); });
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(
      "scale", a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      "add_scalar", a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      "neg", a, [](float x) { return -x; },
      [](float, float) { return -1.0f; });
}

Tensor OneMinus(const Tensor& a) {
  return UnaryOp(
      "one_minus", a, [](float x) { return 1.0f - x; },
      [](float, float) { return -1.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryKernelOp("sigmoid", a, kernels::MapSigmoid,
                       kernels::MapSigmoidGrad, /*grad_from_output=*/true);
}

Tensor Relu(const Tensor& a) {
  return UnaryKernelOp("relu", a, kernels::MapRelu, kernels::MapReluGrad,
                       /*grad_from_output=*/false);
}

Tensor Tanh(const Tensor& a) {
  return UnaryKernelOp("tanh", a, kernels::MapTanh, kernels::MapTanhGrad,
                       /*grad_from_output=*/true);
}

Tensor Exp(const Tensor& a) {
  return UnaryKernelOp("exp", a, kernels::MapExp, kernels::MapExpGrad,
                       /*grad_from_output=*/true);
}

Tensor Log(const Tensor& a, float eps) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeNode(m, n, {a}, a.requires_grad());
  out.SetOp("log");
  const float* ad = a.data();
  float* od = out.data();
  const std::int64_t total = a.size();
  ParallelFor(0, total, kElementwiseGrain,
              [&](std::int64_t i0, std::int64_t i1) {
                kernels::MapLog(ad, od, eps, i0, i1);
              });
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, total, eps]() mutable {
      const float* og = self->EnsureGrad();
      const float* a_d = a_cap.data();
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    kernels::MapLogGrad(a_d, og, ag, eps, i0, i1);
                  });
    });
  }
  return out;
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      "abs", a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}

Tensor Softplus(const Tensor& a) {
  return UnaryKernelOp("softplus", a, kernels::MapSoftplus,
                       kernels::MapSoftplusGrad, /*grad_from_output=*/false);
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      "square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  if (parts.empty()) Fatal("ConcatCols needs at least one tensor");
  const int m = parts[0].rows();
  int total_cols = 0;
  bool needs_grad = false;
  for (const Tensor& p : parts) {
    if (p.rows() != m) Fatal("ConcatCols row count mismatch");
    total_cols += p.cols();
    needs_grad = needs_grad || p.requires_grad();
  }
  Tensor out = Tensor::MakeNode(m, total_cols, parts, needs_grad);
  out.SetOp("concat_cols");
  float* od = out.data();
  ParallelFor(0, m, RowGrain(kElementwiseGrain, total_cols),
              [&](std::int64_t r0, std::int64_t r1) {
                int offset = 0;
                for (const Tensor& p : parts) {
                  const float* pd = p.data();
                  const int pc = p.cols();
                  for (std::int64_t r = r0; r < r1; ++r) {
                    std::copy(pd + static_cast<std::size_t>(r) * pc,
                              pd + static_cast<std::size_t>(r) * pc + pc,
                              od + static_cast<std::size_t>(r) * total_cols + offset);
                  }
                  offset += pc;
                }
              });
  if (needs_grad) {
    std::vector<Tensor> parts_cap = parts;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([parts_cap, self, m, total_cols]() mutable {
      const float* og = self->EnsureGrad();
      int offset = 0;
      for (Tensor& p : parts_cap) {
        const int pc = p.cols();
        if (p.requires_grad()) {
          float* pg = p.impl()->EnsureGrad();
          const int part_offset = offset;
          ParallelFor(0, m, RowGrain(kElementwiseGrain, pc),
                      [&](std::int64_t r0, std::int64_t r1) {
                        for (std::int64_t r = r0; r < r1; ++r) {
                          const float* src = og +
                                             static_cast<std::size_t>(r) * total_cols +
                                             part_offset;
                          float* dst = pg + static_cast<std::size_t>(r) * pc;
                          for (int c = 0; c < pc; ++c) dst[c] += src[c];
                        }
                      });
        }
        offset += pc;
      }
    });
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  if (start < 0 || len <= 0 || start + len > a.cols()) {
    Fatal("SliceCols out of range");
  }
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeNode(m, len, {a}, a.requires_grad());
  out.SetOp("slice_cols");
  const float* ad = a.data();
  float* od = out.data();
  ParallelFor(0, m, RowGrain(kElementwiseGrain, len),
              [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                  std::copy(ad + static_cast<std::size_t>(r) * n + start,
                            ad + static_cast<std::size_t>(r) * n + start + len,
                            od + static_cast<std::size_t>(r) * len);
                }
              });
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, m, n, start, len]() mutable {
      const float* og = self->EnsureGrad();
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, m, RowGrain(kElementwiseGrain, len),
                  [&](std::int64_t r0, std::int64_t r1) {
                    for (std::int64_t r = r0; r < r1; ++r) {
                      const float* src = og + static_cast<std::size_t>(r) * len;
                      float* dst = ag + static_cast<std::size_t>(r) * n + start;
                      for (int c = 0; c < len; ++c) dst[c] += src[c];
                    }
                  });
    });
  }
  return out;
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids) {
  if (ids.empty()) Fatal("EmbeddingLookup with empty ids");
  const int v = table.rows(), d = table.cols();
  const int b = static_cast<int>(ids.size());
  for (int id : ids) {
    if (id < 0 || id >= v) Fatal("EmbeddingLookup id out of vocabulary range");
  }
  Tensor out = Tensor::MakeNode(b, d, {table}, table.requires_grad());
  out.SetOp("embedding_lookup");
  const float* td = table.data();
  float* od = out.data();
  ParallelFor(0, b, RowGrain(kElementwiseGrain, d),
              [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                  std::copy(td + static_cast<std::size_t>(ids[r]) * d,
                            td + static_cast<std::size_t>(ids[r]) * d + d,
                            od + static_cast<std::size_t>(r) * d);
                }
              });
  if (out.requires_grad()) {
    Tensor table_cap = table;
    Tensor::Impl* self = out.impl();
    std::vector<int> ids_cap = ids;
    out.SetBackwardFn([table_cap, self, ids_cap, b, d]() mutable {
      const float* og = self->EnsureGrad();
      float* tg = table_cap.impl()->EnsureGrad();
      const int vocab = table_cap.rows();
      // Vocab-range sharding avoids scatter races without per-thread
      // buffers: each chunk owns table rows [v0, v1) and scans the whole
      // batch for ids in its range. Every table row thus accumulates its
      // duplicate-id contributions in ascending batch order — identical to
      // the serial scatter bit for bit, at any chunk count. The grain prices
      // chunks by the *useful* scatter work (b * d), not the vocab range, so
      // small batches stay serial.
      const std::int64_t scatter_work = static_cast<std::int64_t>(b) * d;
      const std::int64_t grain_rows = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(vocab) * kElementwiseGrain /
                 std::max<std::int64_t>(1, scatter_work));
      ParallelFor(0, vocab, grain_rows, [&](std::int64_t v0, std::int64_t v1) {
        for (int r = 0; r < b; ++r) {
          const int id = ids_cap[static_cast<std::size_t>(r)];
          if (id < v0 || id >= v1) continue;
          const float* src = og + static_cast<std::size_t>(r) * d;
          float* dst = tg + static_cast<std::size_t>(id) * d;
          for (int c = 0; c < d; ++c) dst[c] += src[c];
        }
      });
    });
  }
  return out;
}

Tensor EmbeddingConcat(const std::vector<Tensor>& tables,
                       const std::vector<std::vector<int>>& field_ids) {
  if (tables.empty()) Fatal("EmbeddingConcat needs at least one table");
  if (field_ids.size() != tables.size()) {
    Fatal("EmbeddingConcat field count mismatch");
  }
  const int b = static_cast<int>(field_ids[0].size());
  if (b == 0) Fatal("EmbeddingConcat with empty ids");
  int total_cols = 0;
  bool needs_grad = false;
  for (std::size_t f = 0; f < tables.size(); ++f) {
    if (static_cast<int>(field_ids[f].size()) != b) {
      Fatal("EmbeddingConcat ragged id lists");
    }
    const int v = tables[f].rows();
    for (int id : field_ids[f]) {
      if (id < 0 || id >= v) Fatal("EmbeddingConcat id out of vocabulary range");
    }
    total_cols += tables[f].cols();
    needs_grad = needs_grad || tables[f].requires_grad();
  }
  Tensor out = Tensor::MakeNode(b, total_cols, tables, needs_grad);
  out.SetOp("embedding_concat");
  float* od = out.data();
  // Fused gather+concat: each output row is assembled directly from the
  // tables — no per-field intermediate tensors, one pass over the output.
  ParallelFor(0, b, RowGrain(kElementwiseGrain, total_cols),
              [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                  float* dst = od + static_cast<std::size_t>(r) * total_cols;
                  for (std::size_t f = 0; f < tables.size(); ++f) {
                    const int d = tables[f].cols();
                    const float* src =
                        tables[f].data() +
                        static_cast<std::size_t>(field_ids[f][r]) * d;
                    std::copy(src, src + d, dst);
                    dst += d;
                  }
                }
              });
  if (needs_grad) {
    std::vector<Tensor> tables_cap = tables;
    std::vector<std::vector<int>> ids_cap = field_ids;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([tables_cap, ids_cap, self, b, total_cols]() mutable {
      const float* og = self->EnsureGrad();
      int offset = 0;
      for (std::size_t f = 0; f < tables_cap.size(); ++f) {
        const int d = tables_cap[f].cols();
        if (tables_cap[f].requires_grad()) {
          float* tg = tables_cap[f].impl()->EnsureGrad();
          const std::vector<int>& ids = ids_cap[f];
          const int vocab = tables_cap[f].rows();
          const int col0 = offset;
          // Same vocab-range-sharded scatter as EmbeddingLookup's backward
          // (bit-exact at any chunk count), reading this field's column
          // slice of the fused gradient.
          const std::int64_t scatter_work = static_cast<std::int64_t>(b) * d;
          const std::int64_t grain_rows = std::max<std::int64_t>(
              1, static_cast<std::int64_t>(vocab) * kElementwiseGrain /
                     std::max<std::int64_t>(1, scatter_work));
          ParallelFor(0, vocab, grain_rows,
                      [&](std::int64_t v0, std::int64_t v1) {
                        for (int r = 0; r < b; ++r) {
                          const int id = ids[static_cast<std::size_t>(r)];
                          if (id < v0 || id >= v1) continue;
                          const float* src =
                              og + static_cast<std::size_t>(r) * total_cols +
                              col0;
                          float* dst = tg + static_cast<std::size_t>(id) * d;
                          for (int c = 0; c < d; ++c) dst[c] += src[c];
                        }
                      });
        }
        offset += d;
      }
    });
  }
  return out;
}

Tensor Sum(const Tensor& a) {
  Tensor out = Tensor::MakeNode(1, 1, {a}, a.requires_grad());
  out.SetOp("sum");
  const float* ad = a.data();
  const std::int64_t total = a.size();
  // Deterministic tree reduction: fixed chunk layout, one double partial per
  // chunk, merged in chunk order. A single chunk is exactly the serial sum.
  const int chunks = std::max(1, core::ParallelChunks(total, kElementwiseGrain));
  std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
  ParallelForChunks(0, total, kElementwiseGrain,
                    [&](int c, std::int64_t i0, std::int64_t i1) {
                      partial[static_cast<std::size_t>(c)] =
                          kernels::ReduceSum(ad, i0, i1);
                    });
  double acc = 0.0;
  for (double p : partial) acc += p;
  out.data()[0] = static_cast<float>(acc);
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, total]() mutable {
      const float g = self->EnsureGrad()[0];
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) ag[i] += g;
                  });
    });
  }
  return out;
}

Tensor Mean(const Tensor& a) {
  // Fused Scale(Sum(a), 1/size): same chunked double partials as Sum, the
  // 1/size factor applied after the float cast — bit-identical to the
  // two-node composite (ops::reference::Mean) without the intermediate.
  Tensor out = Tensor::MakeNode(1, 1, {a}, a.requires_grad());
  out.SetOp("mean");
  const float* ad = a.data();
  const std::int64_t total = a.size();
  const float inv = 1.0f / static_cast<float>(total);
  const int chunks = std::max(1, core::ParallelChunks(total, kElementwiseGrain));
  std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
  ParallelForChunks(0, total, kElementwiseGrain,
                    [&](int c, std::int64_t i0, std::int64_t i1) {
                      partial[static_cast<std::size_t>(c)] =
                          kernels::ReduceSum(ad, i0, i1);
                    });
  double acc = 0.0;
  for (double p : partial) acc += p;
  out.data()[0] = static_cast<float>(acc) * inv;
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, total, inv]() mutable {
      const float g = self->EnsureGrad()[0] * inv;
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) ag[i] += g;
                  });
    });
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeNode(m, 1, {a}, a.requires_grad());
  out.SetOp("sum_rows");
  const float* ad = a.data();
  float* od = out.data();
  ParallelFor(0, m, RowGrain(kElementwiseGrain, n),
              [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                  float acc = 0.0f;
                  const float* row = ad + static_cast<std::size_t>(r) * n;
                  for (int c = 0; c < n; ++c) acc += row[c];
                  od[r] = acc;
                }
              });
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, m, n]() mutable {
      const float* og = self->EnsureGrad();
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, m, RowGrain(kElementwiseGrain, n),
                  [&](std::int64_t r0, std::int64_t r1) {
                    for (std::int64_t r = r0; r < r1; ++r) {
                      float* row = ag + static_cast<std::size_t>(r) * n;
                      for (int c = 0; c < n; ++c) row[c] += og[r];
                    }
                  });
    });
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::MakeNode(m, n, {a}, a.requires_grad());
  out.SetOp("softmax_rows");
  const float* ad = a.data();
  float* od = out.data();
  ParallelFor(0, m, RowGrain(kElementwiseGrain, n),
              [&](std::int64_t r0, std::int64_t r1) {
                for (std::int64_t r = r0; r < r1; ++r) {
                  kernels::SoftmaxRowForward(
                      ad + static_cast<std::size_t>(r) * n,
                      od + static_cast<std::size_t>(r) * n, n);
                }
              });
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, m, n]() mutable {
      const float* og = self->EnsureGrad();
      const float* out_d = self->data.data();
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, m, RowGrain(kElementwiseGrain, n),
                  [&](std::int64_t r0, std::int64_t r1) {
                    for (std::int64_t r = r0; r < r1; ++r) {
                      kernels::SoftmaxRowBackward(
                          out_d + static_cast<std::size_t>(r) * n,
                          og + static_cast<std::size_t>(r) * n,
                          ag + static_cast<std::size_t>(r) * n, n);
                    }
                  });
    });
  }
  return out;
}

Tensor BceLoss(const Tensor& pred, const Tensor& target, float eps) {
  if (pred.rows() != target.rows() || pred.cols() != target.cols()) {
    Fatal("BceLoss shape mismatch");
  }
  if (eps <= 0.0f) Fatal("BceLoss eps must be positive");
  const int m = pred.rows(), n = pred.cols();
  Tensor out = Tensor::MakeNode(m, n, {pred, target}, AnyRequiresGrad(pred, target));
  out.SetOp("bce_loss");
  const float* pd = pred.data();
  const float* yd = target.data();
  float* od = out.data();
  const std::int64_t total = pred.size();
  ParallelFor(0, total, kElementwiseGrain,
              [&](std::int64_t i0, std::int64_t i1) {
                kernels::MapBce(pd, yd, od, eps, i0, i1);
              });
  if (out.requires_grad()) {
    Tensor pred_cap = pred, target_cap = target;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([pred_cap, target_cap, self, total, eps]() mutable {
      const float* og = self->EnsureGrad();
      const float* p_d = pred_cap.data();
      const float* y_d = target_cap.data();
      float* pg = pred_cap.requires_grad() ? pred_cap.impl()->EnsureGrad() : nullptr;
      float* tg = target_cap.requires_grad() ? target_cap.impl()->EnsureGrad() : nullptr;
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    kernels::MapBceGrad(p_d, y_d, og, pg, tg, eps, i0, i1);
                  });
    });
  }
  return out;
}

Tensor SigmoidBce(const Tensor& logits, const Tensor& target) {
  if (logits.rows() != target.rows() || logits.cols() != target.cols()) {
    Fatal("SigmoidBce shape mismatch");
  }
  const int m = logits.rows(), n = logits.cols();
  Tensor out =
      Tensor::MakeNode(m, n, {logits, target}, AnyRequiresGrad(logits, target));
  out.SetOp("sigmoid_bce");
  const float* zd = logits.data();
  const float* yd = target.data();
  float* od = out.data();
  const std::int64_t total = logits.size();
  ParallelFor(0, total, kElementwiseGrain,
              [&](std::int64_t i0, std::int64_t i1) {
                kernels::MapSigmoidBce(zd, yd, od, i0, i1);
              });
  if (out.requires_grad()) {
    Tensor z_cap = logits, y_cap = target;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([z_cap, y_cap, self, total]() mutable {
      const float* og = self->EnsureGrad();
      const float* z_d = z_cap.data();
      const float* y_d = y_cap.data();
      float* zg = z_cap.requires_grad() ? z_cap.impl()->EnsureGrad() : nullptr;
      float* yg = y_cap.requires_grad() ? y_cap.impl()->EnsureGrad() : nullptr;
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    kernels::MapSigmoidBceGrad(z_d, y_d, og, zg, yg, i0, i1);
                  });
    });
  }
  return out;
}

Tensor WeightedSum(const Tensor& a, const Tensor& weights) {
  if (a.rows() != weights.rows() || a.cols() != weights.cols()) {
    Fatal("WeightedSum shape mismatch");
  }
  // Fused Sum(Mul(a, w)): float products widened into the same chunked
  // double partial scheme as Sum — bit-identical to the composite
  // (ops::reference::WeightedSum) without materializing the product tensor.
  Tensor out = Tensor::MakeNode(1, 1, {a, weights}, AnyRequiresGrad(a, weights));
  out.SetOp("weighted_sum");
  const float* ad = a.data();
  const float* wd = weights.data();
  const std::int64_t total = a.size();
  const int chunks = std::max(1, core::ParallelChunks(total, kElementwiseGrain));
  std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
  ParallelForChunks(0, total, kElementwiseGrain,
                    [&](int c, std::int64_t i0, std::int64_t i1) {
                      partial[static_cast<std::size_t>(c)] =
                          kernels::ReduceDot(ad, wd, i0, i1);
                    });
  double acc = 0.0;
  for (double p : partial) acc += p;
  out.data()[0] = static_cast<float>(acc);
  if (out.requires_grad()) {
    Tensor a_cap = a, w_cap = weights;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, w_cap, self, total]() mutable {
      const float g = self->EnsureGrad()[0];
      const float* a_d = a_cap.data();
      const float* w_d = w_cap.data();
      float* ag = a_cap.requires_grad() ? a_cap.impl()->EnsureGrad() : nullptr;
      float* wg = w_cap.requires_grad() ? w_cap.impl()->EnsureGrad() : nullptr;
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) {
                      if (ag != nullptr) ag[i] += g * w_d[i];
                      if (wg != nullptr) wg[i] += g * a_d[i];
                    }
                  });
    });
  }
  return out;
}

Tensor SquaredNorm(const Tensor& a) {
  // Fused Sum(Square(a)): float squares widened into chunked double
  // partials — bit-identical to the composite (ops::reference::SquaredNorm)
  // without allocating the squared tensor on the L2-regularization path.
  Tensor out = Tensor::MakeNode(1, 1, {a}, a.requires_grad());
  out.SetOp("squared_norm");
  const float* ad = a.data();
  const std::int64_t total = a.size();
  const int chunks = std::max(1, core::ParallelChunks(total, kElementwiseGrain));
  std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
  ParallelForChunks(0, total, kElementwiseGrain,
                    [&](int c, std::int64_t i0, std::int64_t i1) {
                      partial[static_cast<std::size_t>(c)] =
                          kernels::ReduceSquares(ad, i0, i1);
                    });
  double acc = 0.0;
  for (double p : partial) acc += p;
  out.data()[0] = static_cast<float>(acc);
  if (out.requires_grad()) {
    Tensor a_cap = a;
    Tensor::Impl* self = out.impl();
    out.SetBackwardFn([a_cap, self, total]() mutable {
      const float g = self->EnsureGrad()[0];
      const float* a_d = a_cap.data();
      float* ag = a_cap.impl()->EnsureGrad();
      ParallelFor(0, total, kElementwiseGrain,
                  [&](std::int64_t i0, std::int64_t i1) {
                    for (std::int64_t i = i0; i < i1; ++i) {
                      ag[i] += g * (2.0f * a_d[i]);
                    }
                  });
    });
  }
  return out;
}

namespace reference {

Tensor Mean(const Tensor& a) {
  return Scale(Sum(a), 1.0f / static_cast<float>(a.size()));
}

Tensor WeightedSum(const Tensor& a, const Tensor& weights) {
  if (a.rows() != weights.rows() || a.cols() != weights.cols()) {
    Fatal("WeightedSum shape mismatch");
  }
  return Sum(Mul(a, weights));
}

Tensor SquaredNorm(const Tensor& a) { return Sum(Square(a)); }

Tensor SigmoidBce(const Tensor& logits, const Tensor& target) {
  return BceLoss(Sigmoid(logits), target);
}

Tensor EmbeddingConcat(const std::vector<Tensor>& tables,
                       const std::vector<std::vector<int>>& field_ids) {
  if (tables.empty() || field_ids.size() != tables.size()) {
    Fatal("EmbeddingConcat field count mismatch");
  }
  std::vector<Tensor> parts;
  parts.reserve(tables.size());
  for (std::size_t f = 0; f < tables.size(); ++f) {
    parts.push_back(EmbeddingLookup(tables[f], field_ids[f]));
  }
  return parts.size() == 1 ? parts[0] : ConcatCols(parts);
}

}  // namespace reference
}  // namespace ops
}  // namespace dcmt

// Fixture: seeded `nondeterminism` violations — a libc entropy call and an
// unseeded standard-library engine type.
#include <cstdlib>
#include <random>

int Roll() { return rand() % 6; }

std::mt19937 engine;

#include "data/batcher.h"

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <utility>

namespace dcmt {
namespace data {

BatchBuilder::BatchBuilder(const FeatureSchema& schema, int capacity)
    : schema_(schema) {
  if (capacity <= 0) {
    std::fprintf(stderr, "BatchBuilder: non-positive capacity\n");
    std::abort();
  }
  const std::size_t cap = static_cast<std::size_t>(capacity);
  batch_.deep_ids.assign(schema_.deep_fields.size(), {});
  batch_.wide_ids.assign(schema_.wide_fields.size(), {});
  for (auto& v : batch_.deep_ids) v.reserve(cap);
  for (auto& v : batch_.wide_ids) v.reserve(cap);
  click_.reserve(cap);
  conversion_.reserve(cap);
  ctcvr_.reserve(cap);
  batch_.click_raw.reserve(cap);
  batch_.conversion_raw.reserve(cap);
  batch_.true_ctr.reserve(cap);
  batch_.true_cvr.reserve(cap);
}

void BatchBuilder::Add(const Example& e) {
  const std::size_t n_deep = schema_.deep_fields.size();
  const std::size_t n_wide = schema_.wide_fields.size();
  for (std::size_t f = 0; f < n_deep; ++f) batch_.deep_ids[f].push_back(e.deep_ids[f]);
  for (std::size_t f = 0; f < n_wide; ++f) batch_.wide_ids[f].push_back(e.wide_ids[f]);
  click_.push_back(static_cast<float>(e.click));
  conversion_.push_back(static_cast<float>(e.conversion));
  ctcvr_.push_back(static_cast<float>(e.click && e.conversion ? 1 : 0));
  batch_.click_raw.push_back(e.click);
  batch_.conversion_raw.push_back(e.conversion);
  batch_.true_ctr.push_back(e.true_ctr);
  batch_.true_cvr.push_back(e.true_cvr);
  ++size_;
}

Batch BatchBuilder::Finish() {
  if (size_ <= 0) {
    std::fprintf(stderr, "BatchBuilder: empty batch\n");
    std::abort();
  }
  batch_.size = size_;
  batch_.click = Tensor::ColumnVector(click_);
  batch_.conversion = Tensor::ColumnVector(conversion_);
  batch_.ctcvr = Tensor::ColumnVector(ctcvr_);
  return std::move(batch_);
}

Batch MakeBatch(const std::vector<Example>& examples,
                const std::vector<std::int64_t>& indices, std::int64_t first,
                int count, const FeatureSchema& schema) {
  if (count <= 0) {
    std::fprintf(stderr, "MakeBatch: non-positive count\n");
    std::abort();
  }
  BatchBuilder builder(schema, count);
  for (int b = 0; b < count; ++b) {
    builder.Add(examples[static_cast<std::size_t>(indices[first + b])]);
  }
  return builder.Finish();
}

Batch MakeContiguousBatch(const Dataset& dataset, std::int64_t first, int count) {
  static thread_local std::vector<std::int64_t> identity;
  const std::int64_t needed = first + count;
  if (static_cast<std::int64_t>(identity.size()) < needed) {
    const std::int64_t old = static_cast<std::int64_t>(identity.size());
    identity.resize(static_cast<std::size_t>(needed));
    std::iota(identity.begin() + old, identity.end(), old);
  }
  return MakeBatch(dataset.examples(), identity, first, count, dataset.schema());
}

std::vector<std::int64_t> ShardedEpochOrder(
    const std::vector<std::int64_t>& shard_rows, Rng* rng) {
  std::vector<std::int64_t> offsets(shard_rows.size() + 1, 0);
  for (std::size_t s = 0; s < shard_rows.size(); ++s) {
    if (shard_rows[s] < 0) {
      std::fprintf(stderr, "ShardedEpochOrder: negative shard row count\n");
      std::abort();
    }
    offsets[s + 1] = offsets[s] + shard_rows[s];
  }
  std::vector<std::int64_t> shard_perm(shard_rows.size());
  std::iota(shard_perm.begin(), shard_perm.end(), 0);
  if (rng != nullptr) rng->Shuffle(&shard_perm);

  std::vector<std::int64_t> order;
  order.reserve(static_cast<std::size_t>(offsets.back()));
  std::vector<std::int64_t> local;
  for (const std::int64_t s : shard_perm) {
    local.resize(static_cast<std::size_t>(shard_rows[static_cast<std::size_t>(s)]));
    std::iota(local.begin(), local.end(), 0);
    if (rng != nullptr) rng->Shuffle(&local);
    const std::int64_t base = offsets[static_cast<std::size_t>(s)];
    for (const std::int64_t r : local) order.push_back(base + r);
  }
  return order;
}

Batcher::Batcher(const Dataset* dataset, int batch_size, Rng* rng,
                 std::vector<std::int64_t> shard_plan)
    : dataset_(dataset),
      batch_size_(batch_size),
      rng_(rng),
      shard_plan_(std::move(shard_plan)) {
  if (batch_size_ <= 0) {
    std::fprintf(stderr, "Batcher: batch_size must be positive\n");
    std::abort();
  }
  if (!shard_plan_.empty()) {
    std::int64_t total = 0;
    for (const std::int64_t rows : shard_plan_) total += rows;
    if (total != dataset_->size()) {
      std::fprintf(stderr, "Batcher: shard plan does not cover the dataset\n");
      std::abort();
    }
  }
  order_.resize(static_cast<std::size_t>(dataset_->size()));
  std::iota(order_.begin(), order_.end(), 0);
  // The first epoch's one and only shuffle. fresh_epoch_ is true, so the
  // first Next() cannot reshuffle again: SaveState() taken right after
  // construction captures exactly the order the first epoch trains on.
  ShuffleIfNeeded();
}

void Batcher::ShuffleIfNeeded() {
  if (rng_ == nullptr) return;
  if (shard_plan_.empty()) {
    rng_->Shuffle(&order_);
  } else {
    order_ = ShardedEpochOrder(shard_plan_, rng_);
  }
}

bool Batcher::Next(Batch* batch) {
  if (cursor_ >= dataset_->size()) {
    // Epoch finished: report end once, then lazily start the next epoch.
    // This is the single site that clears fresh_epoch_; it used to also be
    // cleared as the last batch was handed out, which made Rewind() after a
    // completed epoch reshuffle instead of replaying.
    cursor_ = 0;
    fresh_epoch_ = false;
    return false;
  }
  if (!fresh_epoch_ && cursor_ == 0) {
    // Lazy epoch start: the one reshuffle site after construction.
    ShuffleIfNeeded();
    fresh_epoch_ = true;
  }
  const int count = static_cast<int>(
      std::min<std::int64_t>(batch_size_, dataset_->size() - cursor_));
  *batch = MakeBatch(dataset_->examples(), order_, cursor_, count,
                     dataset_->schema());
  cursor_ += count;
  return true;
}

BatcherState Batcher::SaveState() const {
  BatcherState state;
  state.order = order_;
  state.cursor = cursor_;
  state.fresh_epoch = fresh_epoch_;
  return state;
}

bool Batcher::RestoreState(const BatcherState& state) {
  if (static_cast<std::int64_t>(state.order.size()) != dataset_->size()) {
    return false;
  }
  if (state.cursor < 0 || state.cursor > dataset_->size()) return false;
  for (const std::int64_t idx : state.order) {
    if (idx < 0 || idx >= dataset_->size()) return false;
  }
  order_ = state.order;
  cursor_ = state.cursor;
  fresh_epoch_ = state.fresh_epoch;
  return true;
}

std::int64_t Batcher::batches_per_epoch() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

}  // namespace data
}  // namespace dcmt

#include "serve/frozen_model.h"

#include <numeric>
#include <utility>

#include "core/registry.h"
#include "models/common.h"
#include "nn/serialize.h"
#include "tensor/inference.h"

namespace dcmt {
namespace serve {

FrozenModel::FrozenModel(std::unique_ptr<models::MultiTaskModel> model,
                         data::FeatureSchema schema)
    : owned_(std::move(model)),
      model_(owned_.get()),
      schema_(std::move(schema)) {
  IndexEmbeddingTables();
}

void FrozenModel::IndexEmbeddingTables() {
  // SharedEmbeddings registers its tables as "embed.deep.fieldN" then
  // "embed.wide.fieldN" (models/common.cc); collect them in that order so
  // the table index is schema field order, deep fields first. Parameter
  // names are unique per module, so a linear scan per field suffices (the
  // table list is built once per FrozenModel).
  embedding_tables_.clear();
  auto find_table = [this](const std::string& name, Tensor* out) {
    for (const Tensor& p : model_->parameters()) {
      if (p.name() == name) {
        *out = p;
        return true;
      }
    }
    return false;
  };
  auto collect = [&](const char* kind, std::size_t fields) {
    for (std::size_t f = 0; f < fields; ++f) {
      Tensor table;
      if (!find_table(std::string("embed.") + kind + ".field" +
                          std::to_string(f),
                      &table)) {
        return;
      }
      embedding_tables_.push_back(table);
    }
  };
  collect("deep", schema_.deep_fields.size());
  collect("wide", schema_.wide_fields.size());
}

int FrozenModel::EmbeddingTableRows(int table) const {
  if (table < 0 || table >= EmbeddingTableCount()) return 0;
  return embedding_tables_[static_cast<std::size_t>(table)].rows();
}

int FrozenModel::EmbeddingTableDim(int table) const {
  if (table < 0 || table >= EmbeddingTableCount()) return 0;
  return embedding_tables_[static_cast<std::size_t>(table)].cols();
}

bool FrozenModel::EmbeddingRow(int table, int id,
                               std::vector<float>* out) const {
  if (table < 0 || table >= EmbeddingTableCount()) return false;
  const Tensor& t = embedding_tables_[static_cast<std::size_t>(table)];
  if (id < 0 || id >= t.rows()) return false;
  out->resize(static_cast<std::size_t>(t.cols()));
  for (int c = 0; c < t.cols(); ++c) {
    (*out)[static_cast<std::size_t>(c)] = t.at(id, c);
  }
  return true;
}

FrozenModel FrozenModel::View(models::MultiTaskModel* model,
                              const data::FeatureSchema& schema) {
  return FrozenModel(model, schema);
}

std::unique_ptr<FrozenModel> FrozenModel::Load(
    const std::string& name, const data::FeatureSchema& schema,
    const models::ModelConfig& config, const std::string& checkpoint_path,
    core::FileSystem* fs) {
  auto model = core::CreateModel(name, schema, config);
  if (!nn::LoadParameters(model.get(), checkpoint_path, fs)) return nullptr;
  return std::make_unique<FrozenModel>(std::move(model), schema);
}

ScoreColumns FrozenModel::ScoreBatch(const data::Batch& batch) const {
  InferenceGuard guard;
  const models::Predictions preds = model_->Forward(batch);
  ScoreColumns scores;
  scores.pctr = models::ColumnToVector(preds.ctr);
  scores.pcvr = models::ColumnToVector(preds.cvr);
  scores.pctcvr = models::ColumnToVector(preds.ctcvr);
  return scores;
}

ScoreColumns FrozenModel::ScoreExamples(
    const std::vector<data::Example>& examples) const {
  if (examples.empty()) return {};
  InferenceGuard guard;
  std::vector<std::int64_t> indices(examples.size());
  std::iota(indices.begin(), indices.end(), 0);
  const data::Batch batch = data::MakeBatch(
      examples, indices, 0, static_cast<int>(examples.size()), schema_);
  return ScoreBatch(batch);
}

}  // namespace serve
}  // namespace dcmt

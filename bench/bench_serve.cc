// Serving-path performance (DESIGN.md §13).
//
// The tier-1 acceptance gate: the tape-free serving forward
// (serve::FrozenModel::ScoreBatch, which runs under an InferenceGuard with
// arena-backed activations) must beat the taped training Forward on per-row
// latency for the same rows. Tape overhead is per *op*, not per row, so the
// comparison is run at two batch sizes: 32 rows (deadline-flush scale, where
// the per-op saving is a measurable fraction of the batch) and 256 rows (the
// engine's default max_batch, where kernel time dominates and the two paths
// converge — frozen must still not lose). The engine benchmark adds the
// micro-batcher's queue + future overhead on top so the full
// Submit→Score→fulfill path has a tracked number too. All entries fold into
// BENCH_engine.json via tools/bench_to_json.

#include <benchmark/benchmark.h>

#include "core/dcmt.h"
#include "core/thread_pool.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "serve/engine.h"
#include "serve/frozen_model.h"

namespace dcmt {
namespace {

constexpr int kMicroRows = 32;   // deadline-flush scale micro-batch
constexpr int kFullRows = 256;   // EngineConfig::max_batch default

data::SyntheticLogGenerator& Generator() {
  static data::SyntheticLogGenerator generator([] {
    data::DatasetProfile profile = data::AeEsProfile();
    profile.train_exposures = 4096;
    return profile;
  }());
  return generator;
}

const data::Dataset& TestRows() {
  static const data::Dataset dataset = Generator().GenerateTrain();
  return dataset;
}

/// Taped baseline: the training-path Forward, autograd bookkeeping and all.
void ScoreTaped(benchmark::State& state, int rows) {
  core::ThreadPool::Global().SetNumThreads(1);
  core::Dcmt model(TestRows().schema(), models::ModelConfig{});
  const data::Batch batch = data::MakeContiguousBatch(TestRows(), 0, rows);
  for (auto _ : state) {
    const models::Predictions preds = model.Forward(batch);
    benchmark::DoNotOptimize(preds.ctcvr.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

/// Tape-free serving forward: same model, same rows, no graph, arena reuse.
void ScoreFrozen(benchmark::State& state, int rows) {
  core::ThreadPool::Global().SetNumThreads(1);
  auto model = std::make_unique<core::Dcmt>(TestRows().schema(),
                                            models::ModelConfig{});
  const serve::FrozenModel frozen(std::move(model), TestRows().schema());
  const data::Batch batch = data::MakeContiguousBatch(TestRows(), 0, rows);
  for (auto _ : state) {
    const serve::ScoreColumns scores = frozen.ScoreBatch(batch);
    benchmark::DoNotOptimize(scores.pctcvr[0]);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_ScoreMicroBatchTaped(benchmark::State& state) {
  ScoreTaped(state, kMicroRows);
}
BENCHMARK(BM_ScoreMicroBatchTaped)->UseRealTime();

void BM_ScoreMicroBatchFrozen(benchmark::State& state) {
  ScoreFrozen(state, kMicroRows);
}
BENCHMARK(BM_ScoreMicroBatchFrozen)->UseRealTime();

void BM_ScoreBatchTaped(benchmark::State& state) {
  ScoreTaped(state, kFullRows);
}
BENCHMARK(BM_ScoreBatchTaped)->UseRealTime();

void BM_ScoreBatchFrozen(benchmark::State& state) {
  ScoreFrozen(state, kFullRows);
}
BENCHMARK(BM_ScoreBatchFrozen)->UseRealTime();

/// Full engine path: per-row Submit into the micro-batcher, bulk-waited.
/// Measures queue/future overhead on top of the frozen forward.
void BM_EngineScoreAll(benchmark::State& state) {
  core::ThreadPool::Global().SetNumThreads(1);
  auto model = std::make_unique<core::Dcmt>(TestRows().schema(),
                                            models::ModelConfig{});
  const serve::FrozenModel frozen(std::move(model), TestRows().schema());
  std::vector<data::Example> rows;
  rows.reserve(kFullRows);
  for (int i = 0; i < kFullRows; ++i) {
    rows.push_back(TestRows().examples()[static_cast<std::size_t>(i)]);
  }
  serve::EngineConfig config;
  config.max_batch = kFullRows;
  serve::Engine engine(&frozen, config);
  for (auto _ : state) {
    const std::vector<serve::Score> scores = engine.ScoreAll(rows);
    benchmark::DoNotOptimize(scores[0].pctcvr);
  }
  state.SetItemsProcessed(state.iterations() * kFullRows);
}
BENCHMARK(BM_EngineScoreAll)->UseRealTime();

}  // namespace
}  // namespace dcmt

BENCHMARK_MAIN();

file(REMOVE_RECURSE
  "libdcmt_eval.a"
)
